"""The provenance data model (schema).

"Central to this process is the development of the provenance data model,
based on the IT implementation of the process and the context of the business
operations" (§II).  The model declares, per business scope:

- the *node types* expected at runtime (e.g. Data type ``jobrequisition``
  with its attributes, Task type ``submission``, Resource type ``person``),
- the *relation types* that correlation analytics may produce, together with
  the node classes they connect (``submitterOf``: Resource → Data).

The model validates captured records, drives XOM generation for the rule
system (:mod:`repro.brms.xom`), and supplies the concept labels used by
verbalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ModelError, SchemaViolation
from repro.model.attributes import AttributeSpec, AttributeValue
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)


def _default_label(name: str) -> str:
    """Derive a human concept label from a type name.

    ``jobrequisition`` → ``Jobrequisition``; callers normally pass an
    explicit label such as ``Job Requisition`` (the paper's concept.label).
    """
    return name[:1].upper() + name[1:]


@dataclass(frozen=True)
class NodeTypeSpec:
    """Declaration of a node type within one of the four node classes.

    Attributes:
        name: the entity-type name recorder clients emit (``jobrequisition``).
        record_class: which of Data/Task/Resource/Custom it belongs to.
        label: the business concept label used by verbalization
            (``Job Requisition``).
        attributes: attribute declarations keyed by name.
    """

    name: str
    record_class: RecordClass
    label: str = ""
    attributes: Tuple[AttributeSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.record_class is RecordClass.RELATION:
            raise ModelError("node types cannot use the Relation class")
        if not self.label:
            object.__setattr__(self, "label", _default_label(self.name))
        names = [spec.name for spec in self.attributes]
        if len(names) != len(set(names)):
            raise ModelError(f"duplicate attribute in node type {self.name!r}")

    def attribute(self, name: str) -> Optional[AttributeSpec]:
        """The spec for attribute *name*, or None when undeclared."""
        for spec in self.attributes:
            if spec.name == name:
                return spec
        return None

    def required_attributes(self) -> List[AttributeSpec]:
        return [spec for spec in self.attributes if spec.required]

    def validate_record(self, record: ProvenanceRecord) -> None:
        """Raise :class:`SchemaViolation` unless *record* conforms."""
        if record.record_class is not self.record_class:
            raise SchemaViolation(
                f"record {record.record_id} has class "
                f"{record.record_class.value}, type {self.name!r} expects "
                f"{self.record_class.value}"
            )
        for spec in self.attributes:
            value = record.get(spec.name)
            if value is None:
                if spec.required:
                    raise SchemaViolation(
                        f"record {record.record_id} of type {self.name!r} "
                        f"is missing required attribute {spec.name!r}"
                    )
                continue
            spec.validate(value)


@dataclass(frozen=True)
class RelationTypeSpec:
    """Declaration of a relation (edge) type.

    Attributes:
        name: the relation name (``submitterOf``, ``approvalOf``, ``actor``…).
        source_class: record class required of the edge source.
        target_class: record class required of the edge target.
        label: the phrase fragment verbalization uses
            (``the submitter of``).
    """

    name: str
    source_class: RecordClass
    target_class: RecordClass
    label: str = ""

    def __post_init__(self) -> None:
        if RecordClass.RELATION in (self.source_class, self.target_class):
            raise ModelError("relations cannot connect other relations")
        if not self.label:
            object.__setattr__(self, "label", _default_label(self.name))


class ProvenanceDataModel:
    """The set of node and relation types for one business scope.

    The model is the contract shared by recorder clients (which type events
    according to it), the store (which validates on append when asked), the
    graph builder, and the BRMS (which generates the XOM/BOM from it).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError("data model needs a name")
        self.name = name
        self._node_types: Dict[str, NodeTypeSpec] = {}
        self._relation_types: Dict[str, RelationTypeSpec] = {}
        #: bumped on every type declaration; consumers that compile derived
        #: artifacts from the schema (the store's XML codecs) compare it to
        #: know when their caches are stale.
        self.revision = 0

    # -- declaration -------------------------------------------------------

    def add_node_type(self, spec: NodeTypeSpec) -> NodeTypeSpec:
        """Register a node type; names are unique across all node classes."""
        if spec.name in self._node_types:
            raise ModelError(f"node type {spec.name!r} already declared")
        self._node_types[spec.name] = spec
        self.revision += 1
        return spec

    def add_relation_type(self, spec: RelationTypeSpec) -> RelationTypeSpec:
        """Register a relation type; names are unique."""
        if spec.name in self._relation_types:
            raise ModelError(f"relation type {spec.name!r} already declared")
        self._relation_types[spec.name] = spec
        self.revision += 1
        return spec

    # -- lookup ------------------------------------------------------------

    def node_type(self, name: str) -> NodeTypeSpec:
        try:
            return self._node_types[name]
        except KeyError:
            raise ModelError(
                f"unknown node type {name!r} in model {self.name!r}"
            ) from None

    def relation_type(self, name: str) -> RelationTypeSpec:
        try:
            return self._relation_types[name]
        except KeyError:
            raise ModelError(
                f"unknown relation type {name!r} in model {self.name!r}"
            ) from None

    def has_node_type(self, name: str) -> bool:
        return name in self._node_types

    def has_relation_type(self, name: str) -> bool:
        return name in self._relation_types

    def node_types(
        self, record_class: Optional[RecordClass] = None
    ) -> List[NodeTypeSpec]:
        """All node types, optionally restricted to one record class."""
        specs = list(self._node_types.values())
        if record_class is not None:
            specs = [s for s in specs if s.record_class is record_class]
        return specs

    def relation_types(self) -> List[RelationTypeSpec]:
        return list(self._relation_types.values())

    def node_type_by_label(self, label: str) -> Optional[NodeTypeSpec]:
        """Find a node type by its business concept label (case-insensitive)."""
        wanted = label.strip().lower()
        for spec in self._node_types.values():
            if spec.label.lower() == wanted:
                return spec
        return None

    # -- validation --------------------------------------------------------

    def validate(self, record: ProvenanceRecord) -> None:
        """Raise :class:`SchemaViolation` unless *record* fits this model.

        Custom records of undeclared types are allowed: the paper treats the
        Custom class as "an extension point to capture domain specific,
        mostly virtual artifacts" — control points are attached after model
        development.
        """
        if isinstance(record, RelationRecord):
            if not self.has_relation_type(record.entity_type):
                raise SchemaViolation(
                    f"relation {record.record_id} has undeclared type "
                    f"{record.entity_type!r}"
                )
            return
        if self.has_node_type(record.entity_type):
            self.node_type(record.entity_type).validate_record(record)
            return
        if record.record_class is RecordClass.CUSTOM:
            return
        raise SchemaViolation(
            f"record {record.record_id} has undeclared node type "
            f"{record.entity_type!r}"
        )

    def validate_relation_endpoints(
        self,
        relation: RelationRecord,
        source: ProvenanceRecord,
        target: ProvenanceRecord,
    ) -> None:
        """Check that an edge connects the classes its type declares."""
        spec = self.relation_type(relation.entity_type)
        if source.record_class is not spec.source_class:
            raise SchemaViolation(
                f"relation {relation.entity_type!r} requires a "
                f"{spec.source_class.value} source, got "
                f"{source.record_class.value}"
            )
        if target.record_class is not spec.target_class:
            raise SchemaViolation(
                f"relation {relation.entity_type!r} requires a "
                f"{spec.target_class.value} target, got "
                f"{target.record_class.value}"
            )

    # -- convenience -------------------------------------------------------

    def coerce_attributes(
        self, entity_type: str, raw: Mapping[str, str]
    ) -> Dict[str, AttributeValue]:
        """Coerce wire strings to typed values per the node type's specs.

        Attributes the model does not declare pass through as strings — the
        store keeps them, and verbalization simply does not offer them.
        """
        typed: Dict[str, AttributeValue] = {}
        spec = self._node_types.get(entity_type)
        for name, text in raw.items():
            attribute = spec.attribute(name) if spec else None
            if attribute is None:
                typed[name] = text
            else:
                typed[name] = attribute.type.from_wire(text)
        return typed

    def describe(self) -> str:
        """A human-readable inventory used by examples and docs."""
        lines = [f"Provenance data model {self.name!r}"]
        for record_class in (
            RecordClass.DATA,
            RecordClass.TASK,
            RecordClass.RESOURCE,
            RecordClass.CUSTOM,
        ):
            specs = self.node_types(record_class)
            if not specs:
                continue
            lines.append(f"  {record_class.value} types:")
            for spec in specs:
                attrs = ", ".join(a.name for a in spec.attributes) or "-"
                lines.append(f"    {spec.name} ({spec.label}): {attrs}")
        if self._relation_types:
            lines.append("  Relation types:")
            for rel in self._relation_types.values():
                lines.append(
                    f"    {rel.name}: {rel.source_class.value} -> "
                    f"{rel.target_class.value}"
                )
        return "\n".join(lines)
