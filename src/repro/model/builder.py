"""Fluent builder for provenance data models.

Developing the provenance data model is an explicit step in the paper's
method; the builder keeps that step readable in examples:

    model = (
        ModelBuilder("hiring")
        .data("jobrequisition", "Job Requisition",
              reqid=str, type=str, position=str)
        .resource("person", "Person", name=str, email=str, manager=str)
        .relation("submitterOf", RecordClass.RESOURCE, RecordClass.DATA,
                  label="the submitter of")
        .build()
    )

Python types map onto :class:`~repro.model.attributes.AttributeType`:
``str`` → STRING, ``int`` → INTEGER, ``float`` → FLOAT, ``bool`` → BOOLEAN.
Pass an :class:`AttributeSpec` directly for required attributes or
timestamps.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ModelError
from repro.model.attributes import AttributeSpec, AttributeType
from repro.model.records import RecordClass
from repro.model.schema import (
    NodeTypeSpec,
    ProvenanceDataModel,
    RelationTypeSpec,
)

_PY_TYPE_MAP = {
    str: AttributeType.STRING,
    int: AttributeType.INTEGER,
    float: AttributeType.FLOAT,
    bool: AttributeType.BOOLEAN,
}

AttributeDecl = Union[type, AttributeType, AttributeSpec]


def _to_spec(name: str, decl: AttributeDecl) -> AttributeSpec:
    if isinstance(decl, AttributeSpec):
        if decl.name != name:
            raise ModelError(
                f"attribute spec name {decl.name!r} does not match key {name!r}"
            )
        return decl
    if isinstance(decl, AttributeType):
        return AttributeSpec(name=name, type=decl)
    if decl in _PY_TYPE_MAP:
        return AttributeSpec(name=name, type=_PY_TYPE_MAP[decl])
    raise ModelError(f"cannot interpret attribute declaration {decl!r}")


class ModelBuilder:
    """Accumulates node and relation type declarations, then builds."""

    def __init__(self, name: str) -> None:
        self._model = ProvenanceDataModel(name)

    def _node(
        self,
        record_class: RecordClass,
        name: str,
        label: str,
        /,
        **attributes: AttributeDecl,
    ) -> "ModelBuilder":
        specs = tuple(_to_spec(key, decl) for key, decl in attributes.items())
        self._model.add_node_type(
            NodeTypeSpec(
                name=name,
                record_class=record_class,
                label=label,
                attributes=specs,
            )
        )
        return self

    def data(self, name: str, label: str = "", /, **attributes: AttributeDecl):
        """Declare a Data node type."""
        return self._node(RecordClass.DATA, name, label, **attributes)

    def task(self, name: str, label: str = "", /, **attributes: AttributeDecl):
        """Declare a Task node type."""
        return self._node(RecordClass.TASK, name, label, **attributes)

    def resource(self, name: str, label: str = "", /, **attributes: AttributeDecl):
        """Declare a Resource node type."""
        return self._node(RecordClass.RESOURCE, name, label, **attributes)

    def custom(self, name: str, label: str = "", /, **attributes: AttributeDecl):
        """Declare a Custom node type (checkpoints, alerts, goals)."""
        return self._node(RecordClass.CUSTOM, name, label, **attributes)

    def relation(
        self,
        name: str,
        source: RecordClass,
        target: RecordClass,
        label: str = "",
    ) -> "ModelBuilder":
        """Declare a relation (edge) type between two node classes."""
        self._model.add_relation_type(
            RelationTypeSpec(
                name=name, source_class=source, target_class=target, label=label
            )
        )
        return self

    def build(self) -> ProvenanceDataModel:
        """Return the finished model."""
        return self._model
