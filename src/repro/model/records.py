"""Provenance record classes.

Each record corresponds to one row of the paper's Table I: an id, one of the
five record classes, the application id (``APPID``) that groups a trace, and
a bag of attributes that the XML column serializes.  Nodes of the provenance
graph are Data/Task/Resource/Custom records; RelationRecords become edges.

Records are immutable once created — the provenance store is append-only, and
correlation analytics *add* relation records rather than mutating nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import SchemaViolation, UnknownRecordClass
from repro.model.attributes import AttributeValue


class RecordClass(enum.Enum):
    """The five provenance record classes of the paper's data model."""

    DATA = "Data"
    TASK = "Task"
    RESOURCE = "Resource"
    CUSTOM = "Custom"
    RELATION = "Relation"

    @classmethod
    def from_wire(cls, text: str) -> "RecordClass":
        """Parse the CLASS column value (case-insensitive)."""
        for member in cls:
            if member.value.lower() == text.strip().lower():
                return member
        raise UnknownRecordClass(f"unknown record class {text!r}")

    @property
    def is_node(self) -> bool:
        """Whether records of this class become provenance-graph nodes."""
        return self is not RecordClass.RELATION


def _freeze_attributes(
    attributes: Mapping[str, AttributeValue],
) -> Tuple[Tuple[str, AttributeValue], ...]:
    return tuple(sorted(attributes.items()))


@dataclass(frozen=True)
class ProvenanceRecord:
    """Base class for all provenance records.

    Attributes:
        record_id: unique id within a store (Table I's ``ID`` column).
        app_id: the application/trace id (Table I's ``APPID`` column).
        entity_type: the node or relation *type* within the class — e.g. a
            Data record of type ``jobrequisition``, a Relation record of type
            ``submitterOf``.  This is the name the data model declares and the
            vocabulary verbalizes.
        timestamp: simulated capture time.
        attributes: the typed payload serialized into the XML column.
    """

    record_id: str
    app_id: str
    entity_type: str
    timestamp: int = 0
    _attributes: Tuple[Tuple[str, AttributeValue], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if not self.record_id:
            raise SchemaViolation("record_id must be non-empty")
        if not self.app_id:
            raise SchemaViolation("app_id must be non-empty")
        if not self.entity_type:
            raise SchemaViolation("entity_type must be non-empty")

    @property
    def record_class(self) -> RecordClass:
        raise NotImplementedError

    @property
    def attributes(self) -> Dict[str, AttributeValue]:
        """The attribute payload as a fresh dict (records stay immutable)."""
        return dict(self._attributes)

    def get(
        self, name: str, default: Optional[AttributeValue] = None
    ) -> Optional[AttributeValue]:
        """Return attribute *name* or *default* when absent."""
        for key, value in self._attributes:
            if key == name:
                return value
        return default

    def has(self, name: str) -> bool:
        """Whether attribute *name* is present."""
        return any(key == name for key, __ in self._attributes)

    def with_attributes(self, **extra: AttributeValue) -> "ProvenanceRecord":
        """Return a copy of this record with *extra* attributes merged in.

        Enrichment analytics use this to derive an enriched record; the
        original row in the store is never modified.
        """
        merged = self.attributes
        merged.update(extra)
        return type(self)(
            record_id=self.record_id,
            app_id=self.app_id,
            entity_type=self.entity_type,
            timestamp=self.timestamp,
            _attributes=_freeze_attributes(merged),
        )


def _make_record(cls, record_id, app_id, entity_type, timestamp, attributes):
    return cls(
        record_id=record_id,
        app_id=app_id,
        entity_type=entity_type,
        timestamp=timestamp,
        _attributes=_freeze_attributes(attributes or {}),
    )


@dataclass(frozen=True)
class DataRecord(ProvenanceRecord):
    """A business artifact produced or exchanged during the process."""

    @property
    def record_class(self) -> RecordClass:
        return RecordClass.DATA

    @classmethod
    def create(
        cls,
        record_id: str,
        app_id: str,
        entity_type: str,
        timestamp: int = 0,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
    ) -> "DataRecord":
        return _make_record(cls, record_id, app_id, entity_type, timestamp, attributes)


@dataclass(frozen=True)
class TaskRecord(ProvenanceRecord):
    """A process activity that utilizes or manipulates data."""

    @property
    def record_class(self) -> RecordClass:
        return RecordClass.TASK

    @classmethod
    def create(
        cls,
        record_id: str,
        app_id: str,
        entity_type: str,
        timestamp: int = 0,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
    ) -> "TaskRecord":
        return _make_record(cls, record_id, app_id, entity_type, timestamp, attributes)

    @property
    def start(self) -> Optional[int]:
        """Task start time, when the recorder captured one."""
        value = self.get("start")
        return int(value) if value is not None else None

    @property
    def end(self) -> Optional[int]:
        """Task end time, when the recorder captured one."""
        value = self.get("end")
        return int(value) if value is not None else None


@dataclass(frozen=True)
class ResourceRecord(ProvenanceRecord):
    """A person, runtime, or other actor relevant to the business scope."""

    @property
    def record_class(self) -> RecordClass:
        return RecordClass.RESOURCE

    @classmethod
    def create(
        cls,
        record_id: str,
        app_id: str,
        entity_type: str,
        timestamp: int = 0,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
    ) -> "ResourceRecord":
        return _make_record(cls, record_id, app_id, entity_type, timestamp, attributes)


@dataclass(frozen=True)
class CustomRecord(ProvenanceRecord):
    """Domain-specific virtual artifact: compliance goal, alert, checkpoint.

    Deployed internal control points materialize as Custom records whose
    attributes carry the control id and its edge requirements.
    """

    @property
    def record_class(self) -> RecordClass:
        return RecordClass.CUSTOM

    @classmethod
    def create(
        cls,
        record_id: str,
        app_id: str,
        entity_type: str,
        timestamp: int = 0,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
    ) -> "CustomRecord":
        return _make_record(cls, record_id, app_id, entity_type, timestamp, attributes)


@dataclass(frozen=True)
class RelationRecord(ProvenanceRecord):
    """An edge of the provenance graph between two node records.

    The paper stores relations as first-class rows (Table I row PE4) with a
    source, a target, and a relation type such as ``actor``, ``generates``,
    ``submitterOf`` or ``approvalOf``.
    """

    source_id: str = ""
    target_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.source_id or not self.target_id:
            raise SchemaViolation("relation needs both source_id and target_id")

    @property
    def record_class(self) -> RecordClass:
        return RecordClass.RELATION

    @classmethod
    def create(
        cls,
        record_id: str,
        app_id: str,
        entity_type: str,
        source_id: str,
        target_id: str,
        timestamp: int = 0,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
    ) -> "RelationRecord":
        return cls(
            record_id=record_id,
            app_id=app_id,
            entity_type=entity_type,
            timestamp=timestamp,
            _attributes=_freeze_attributes(attributes or {}),
            source_id=source_id,
            target_id=target_id,
        )


_NODE_CLASSES = {
    RecordClass.DATA: DataRecord,
    RecordClass.TASK: TaskRecord,
    RecordClass.RESOURCE: ResourceRecord,
    RecordClass.CUSTOM: CustomRecord,
}


def record_from_parts(
    record_class: RecordClass,
    record_id: str,
    app_id: str,
    entity_type: str,
    timestamp: int = 0,
    attributes: Optional[Mapping[str, AttributeValue]] = None,
    source_id: str = "",
    target_id: str = "",
) -> ProvenanceRecord:
    """Reconstruct a record of the right concrete class from row parts.

    The XML codec uses this when materializing rows read back from a store.
    """
    if record_class is RecordClass.RELATION:
        return RelationRecord.create(
            record_id=record_id,
            app_id=app_id,
            entity_type=entity_type,
            source_id=source_id,
            target_id=target_id,
            timestamp=timestamp,
            attributes=attributes,
        )
    concrete = _NODE_CLASSES[record_class]
    return concrete.create(
        record_id=record_id,
        app_id=app_id,
        entity_type=entity_type,
        timestamp=timestamp,
        attributes=attributes,
    )
