"""Attribute typing for provenance records.

Table I of the paper stores every record attribute as an XML element, which
makes all values strings on disk.  The data model, however, knows richer
types (the ``type`` of a job requisition is effectively a new/existing flag;
timestamps are numeric), and the XOM generated for rule authoring needs those
types to verbalize comparisons correctly.  :class:`AttributeSpec` is the
single place where an attribute's name, type, and requiredness are declared;
it can coerce wire strings to typed values and back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import SchemaViolation

AttributeValue = Union[str, int, float, bool]


class AttributeType(enum.Enum):
    """Wire-level value types an attribute may carry."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"

    def to_wire(self, value: AttributeValue) -> str:
        """Render a typed value in its canonical XML text form."""
        if self is AttributeType.BOOLEAN:
            return "true" if value else "false"
        return str(value)

    def from_wire(self, text: str) -> AttributeValue:
        """Parse canonical XML text back into a typed value.

        Raises :class:`SchemaViolation` when the text does not parse as this
        type, because a mistyped row in the store means the recorder client
        and the data model disagree.
        """
        try:
            if self is AttributeType.STRING:
                return text
            if self is AttributeType.INTEGER:
                return int(text)
            if self in (AttributeType.FLOAT,):
                return float(text)
            if self is AttributeType.TIMESTAMP:
                return int(text)
            if self is AttributeType.BOOLEAN:
                lowered = text.strip().lower()
                if lowered in ("true", "1", "yes"):
                    return True
                if lowered in ("false", "0", "no"):
                    return False
                raise ValueError(text)
        except ValueError as exc:
            raise SchemaViolation(
                f"value {text!r} is not a valid {self.value}"
            ) from exc
        raise SchemaViolation(f"unhandled attribute type {self!r}")

    def accepts(self, value: AttributeValue) -> bool:
        """True when a Python value is type-compatible with this attribute."""
        if self is AttributeType.STRING:
            return isinstance(value, str)
        if self in (AttributeType.INTEGER, AttributeType.TIMESTAMP):
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.BOOLEAN:
            return isinstance(value, bool)
        return False


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one attribute of a node type.

    Attributes:
        name: the attribute name as it appears in XML elements and, after
            verbalization, in navigation phrases.
        type: the wire-level type.
        required: whether every record of the owning type must carry it.
        verbalized: the business-vocabulary noun used when verbalizing the
            attribute; defaults to the attribute name with underscores
            expanded (``manager_gen`` → ``manager gen``).
    """

    name: str
    type: AttributeType = AttributeType.STRING
    required: bool = False
    verbalized: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaViolation(f"invalid attribute name {self.name!r}")
        if not self.verbalized:
            object.__setattr__(self, "verbalized", self.name.replace("_", " "))

    def validate(self, value: AttributeValue) -> None:
        """Raise :class:`SchemaViolation` unless *value* fits this spec."""
        if not self.type.accepts(value):
            raise SchemaViolation(
                f"attribute {self.name!r} expects {self.type.value}, "
                f"got {value!r}"
            )
