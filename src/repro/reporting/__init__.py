"""Rendering helpers for paper-style tables and benchmark output."""

from repro.reporting.audit import AuditReportBuilder
from repro.reporting.tables import render_table, render_provenance_table

__all__ = ["AuditReportBuilder", "render_provenance_table", "render_table"]
