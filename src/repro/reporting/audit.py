"""Audit report generation.

"Traditionally, auditors are used to check the status and the effectiveness
of internal controls; however, this is a costly and time consuming
approach" (§I).  The automated replacement must still produce what an audit
file needs: per-control effectiveness, an exception list, and — critically
— *evidence*: for every verdict, which provenance records the control
actually examined.  The :class:`AuditReportBuilder` renders exactly that
from compliance results plus the store, using the control points' own
``checks`` edges as the drill-down path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.controls.control import InternalControl
from repro.controls.dashboard import ComplianceDashboard
from repro.controls.materializer import VerdictTransition
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore


def _summarize_record(record: ProvenanceRecord, limit: int = 3) -> str:
    """One-line record summary: ``jobrequisition App01-D1 {reqid=…}``."""
    attributes = record.attributes
    shown = sorted(attributes.items())[:limit]
    rendered = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attributes) > limit:
        rendered += ", …"
    return (
        f"{record.entity_type} {record.record_id}"
        + (f" {{{rendered}}}" if rendered else "")
    )


class AuditReportBuilder:
    """Builds a text audit report from results, controls, and the store."""

    def __init__(
        self,
        store: ProvenanceStore,
        controls: Sequence[InternalControl],
    ) -> None:
        self.store = store
        self.controls = {control.name: control for control in controls}

    # -- evidence ------------------------------------------------------------

    def evidence_lines(self, result: ComplianceResult) -> List[str]:
        """The provenance records backing one result, one line each.

        Definition-bound nodes come first (with their variable names),
        then condition-touched nodes.
        """
        lines: List[str] = []
        listed: set = set()
        for var, node_id in sorted(result.bound_nodes.items()):
            if node_id is None or node_id in listed:
                continue
            listed.add(node_id)
            if node_id in self.store:
                record = self.store.get(node_id)
                lines.append(f"{var}: {_summarize_record(record)}")
        for node_id in result.touched_nodes:
            if node_id in listed or node_id not in self.store:
                continue
            listed.add(node_id)
            record = self.store.get(node_id)
            lines.append(f"(condition): {_summarize_record(record)}")
        if not lines:
            lines.append("(no evidence captured — see status)")
        return lines

    # -- report ----------------------------------------------------------------

    def build(
        self,
        results: Iterable[ComplianceResult],
        title: str = "INTERNAL CONTROLS AUDIT REPORT",
        transitions: Optional[Sequence[VerdictTransition]] = None,
    ) -> str:
        """Render the full report for *results*.

        Args:
            transitions: optional verdict deltas (from a
                :class:`~repro.controls.materializer.VerdictMaterializer`
                listener) to document *when statuses flipped* during the
                audited window — the incremental-evaluation counterpart of
                a point-in-time effectiveness table.
        """
        results = list(results)
        dashboard = ComplianceDashboard()
        for control in self.controls.values():
            dashboard.register_control(control)
        dashboard.record_all(results)

        lines = [title, "=" * len(title), ""]
        lines.append(
            f"store: {len(self.store)} provenance rows across "
            f"{len(self.store.app_ids())} traces; "
            f"{len(self.controls)} controls; "
            f"{len(results)} checks performed"
        )
        lines.append("")

        # Per-control effectiveness.
        lines.append("CONTROL EFFECTIVENESS")
        lines.append("-" * 72)
        for kpi in sorted(dashboard.kpis(), key=lambda k: k.control_name):
            control = self.controls.get(kpi.control_name)
            severity = control.severity.value if control else "medium"
            rate = (
                f"{kpi.compliance_rate:.1%}"
                if kpi.compliance_rate is not None
                else "n/a (no conclusive checks)"
            )
            lines.append(
                f"{kpi.control_name} [{severity}] — compliance {rate} "
                f"({kpi.satisfied} ok / {kpi.violated} violated / "
                f"{kpi.not_applicable} n/a / {kpi.undetermined} undetermined)"
            )
            if control and control.description:
                lines.append(f"    {control.description}")
        lines.append("")

        # Exceptions with evidence drill-down.
        exceptions = dashboard.exceptions()
        lines.append(f"EXCEPTIONS ({len(exceptions)})")
        lines.append("-" * 72)
        if not exceptions:
            lines.append("none")
        for result in exceptions:
            lines.append(f"* {result.control_name} @ trace {result.trace_id}")
            for alert in result.alerts:
                lines.append(f"    alert: {alert}")
            for evidence in self.evidence_lines(result):
                lines.append(f"    evidence {evidence}")
        lines.append("")

        # Evidence gaps: what could not be concluded and why it matters.
        gaps = [
            result
            for result in results
            if result.status is ComplianceStatus.UNDETERMINED
        ]
        lines.append(f"EVIDENCE GAPS ({len(gaps)})")
        lines.append("-" * 72)
        if not gaps:
            lines.append("none — every applicable check was conclusive")
        else:
            by_control: Dict[str, int] = {}
            for result in gaps:
                by_control[result.control_name] = (
                    by_control.get(result.control_name, 0) + 1
                )
            for name, count in sorted(by_control.items()):
                lines.append(
                    f"{name}: {count} trace(s) unobservable under the "
                    f"current capture configuration"
                )

        # Status transitions: how the picture changed during the window.
        if transitions:
            changed = [t for t in transitions if t.changed]
            lines.append("")
            lines.append(f"STATUS TRANSITIONS ({len(changed)})")
            lines.append("-" * 72)
            if not changed:
                lines.append("none — no verdict changed during the window")
            for transition in changed:
                lines.append(f"* {transition.describe()}")
        return "\n".join(lines)
