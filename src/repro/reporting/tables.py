"""Fixed-width table rendering.

Benchmarks regenerate the paper's tables as plain text; this module renders
them consistently so `bench_output.txt` reads like the paper's layout.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.store.xmlcodec import StoredRow


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialized: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(widths[index])
            for index, cell in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def _compact_xml(xml: str, limit: int = 72) -> str:
    flattened = " ".join(xml.split())
    if len(flattened) <= limit:
        return flattened
    return flattened[: limit - 1] + "…"


def render_provenance_table(
    rows: Iterable[StoredRow], title: str = "", xml_width: int = 72
) -> str:
    """Render store rows in the paper's Table I layout.

    Columns: ID, CLASS, APPID, XML (the XML compacted to one line so the
    table stays printable; full XML lives in the store).
    """
    table_rows = [
        (
            row.record_id,
            row.record_class.value,
            row.app_id,
            _compact_xml(row.xml, xml_width),
        )
        for row in rows
    ]
    return render_table(("ID", "CLASS", "APPID", "XML"), table_rows, title)
