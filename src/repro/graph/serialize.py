"""Graph serialization for visualization.

Figure 2 of the paper visualizes a trace "as a graph […] the various icons
such as person, gear, and notepad represent resources, tasks and data items
respectively".  We render to Graphviz DOT (shape per record class: person →
ellipse, task → box ("gear"), data → note ("notepad"), custom → diamond),
to JSON for programmatic use, and to a plain-text census table for the
benchmark harness.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.graph.graph import ProvenanceGraph
from repro.model.records import RecordClass

_SHAPES = {
    RecordClass.RESOURCE: "ellipse",
    RecordClass.TASK: "box",
    RecordClass.DATA: "note",
    RecordClass.CUSTOM: "diamond",
}


def _node_label(record) -> str:
    label = record.entity_type
    name = record.get("name") or record.get("reqid") or record.get("label")
    if name:
        label = f"{label}\\n{name}"
    return label


def to_dot(graph: ProvenanceGraph) -> str:
    """Render the graph as Graphviz DOT text (Figure 2 style)."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for record in sorted(graph.nodes(), key=lambda r: r.record_id):
        shape = _SHAPES.get(record.record_class, "ellipse")
        lines.append(
            f'  "{record.record_id}" '
            f'[label="{_node_label(record)}", shape={shape}];'
        )
    for relation in sorted(graph.edges(), key=lambda r: r.record_id):
        lines.append(
            f'  "{relation.source_id}" -> "{relation.target_id}" '
            f'[label="{relation.entity_type}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def to_json(graph: ProvenanceGraph) -> str:
    """Render the graph as a JSON document (nodes + edges with attributes)."""
    payload = {
        "name": graph.name,
        "nodes": [
            {
                "id": record.record_id,
                "class": record.record_class.value,
                "type": record.entity_type,
                "app_id": record.app_id,
                "timestamp": record.timestamp,
                "attributes": record.attributes,
            }
            for record in sorted(graph.nodes(), key=lambda r: r.record_id)
        ],
        "edges": [
            {
                "id": relation.record_id,
                "type": relation.entity_type,
                "source": relation.source_id,
                "target": relation.target_id,
            }
            for relation in sorted(graph.edges(), key=lambda r: r.record_id)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def to_graphml(graph: ProvenanceGraph) -> str:
    """Render the graph as GraphML (for Gephi/yEd-style tooling).

    Node attributes: record class, entity type, app id, timestamp.  Edge
    attributes: relation type.  Built on networkx's GraphML writer over a
    string-attribute copy of the graph (GraphML has no rich types).
    """
    import io

    import networkx as nx

    export = nx.MultiDiGraph(name=graph.name)
    for record in graph.nodes():
        export.add_node(
            record.record_id,
            record_class=record.record_class.value,
            entity_type=record.entity_type,
            app_id=record.app_id,
            timestamp=record.timestamp,
        )
    for relation in graph.edges():
        export.add_edge(
            relation.source_id,
            relation.target_id,
            key=relation.record_id,
            relation_type=relation.entity_type,
        )
    buffer = io.BytesIO()
    nx.write_graphml(export, buffer)
    return buffer.getvalue().decode("utf-8")


def trace_census(graph: ProvenanceGraph) -> List[str]:
    """Plain-text census lines: node and edge counts by type.

    The Figure-2 benchmark prints these lines as its regenerated "figure".
    """
    lines = [f"trace graph {graph.name!r}: "
             f"{graph.node_count} nodes, {graph.edge_count} edges"]
    by_class: Dict[str, List[str]] = {}
    for record in graph.nodes():
        by_class.setdefault(record.record_class.value, []).append(
            record.entity_type
        )
    for class_name in ("Resource", "Task", "Data", "Custom"):
        types = by_class.get(class_name, [])
        if not types:
            continue
        counted: Dict[str, int] = {}
        for entity_type in types:
            counted[entity_type] = counted.get(entity_type, 0) + 1
        rendered = ", ".join(
            f"{name} x{count}" if count > 1 else name
            for name, count in sorted(counted.items())
        )
        lines.append(f"  {class_name}: {rendered}")
    edge_counts: Dict[str, int] = {}
    for relation in graph.edges():
        edge_counts[relation.entity_type] = (
            edge_counts.get(relation.entity_type, 0) + 1
        )
    if edge_counts:
        rendered = ", ".join(
            f"{name} x{count}" if count > 1 else name
            for name, count in sorted(edge_counts.items())
        )
        lines.append(f"  Relations: {rendered}")
    return lines
