"""Typed traversal over the provenance graph.

Navigation phrases in the business vocabulary compile down to these
primitives: "the submitter of the job requisition" is *follow the
``submitterOf`` relation into the requisition node, backwards*.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

from repro.graph.graph import ProvenanceGraph
from repro.model.records import ProvenanceRecord


def follow(
    graph: ProvenanceGraph,
    record_id: str,
    relation_type: str,
    direction: str = "out",
) -> List[ProvenanceRecord]:
    """Nodes reached from *record_id* over one relation type.

    Args:
        direction: ``"out"`` follows source→target, ``"in"`` target→source.
    """
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    if direction == "out":
        relations = graph.edges_from(record_id, relation_type)
        ids = [r.target_id for r in relations]
    else:
        relations = graph.edges_to(record_id, relation_type)
        ids = [r.source_id for r in relations]
    return [graph.node(i) for i in ids]


def neighbors(graph: ProvenanceGraph, record_id: str) -> List[ProvenanceRecord]:
    """All nodes adjacent to *record_id*, in either direction, deduplicated."""
    seen: Set[str] = set()
    result: List[ProvenanceRecord] = []
    for relation in graph.edges_from(record_id):
        if relation.target_id not in seen:
            seen.add(relation.target_id)
            result.append(graph.node(relation.target_id))
    for relation in graph.edges_to(record_id):
        if relation.source_id not in seen:
            seen.add(relation.source_id)
            result.append(graph.node(relation.source_id))
    return result


def reachable(
    graph: ProvenanceGraph,
    record_id: str,
    relation_type: Optional[str] = None,
    max_hops: Optional[int] = None,
) -> Set[str]:
    """Ids reachable from *record_id* following edges forward.

    Args:
        relation_type: restrict traversal to one relation type.
        max_hops: limit the search depth.
    """
    if record_id not in graph:
        return set()
    visited: Set[str] = {record_id}
    queue = deque([(record_id, 0)])
    while queue:
        current, depth = queue.popleft()
        if max_hops is not None and depth >= max_hops:
            continue
        for relation in graph.edges_from(current, relation_type):
            if relation.target_id not in visited:
                visited.add(relation.target_id)
                queue.append((relation.target_id, depth + 1))
    visited.discard(record_id)
    return visited
