"""The provenance graph structure.

A directed multigraph whose nodes are Data/Task/Resource/Custom records and
whose edges are Relation records.  The graph is a *view* built from a store;
it holds the records themselves so that queries against node attributes need
no store round-trip.  Backed by :mod:`networkx` for the generic graph
algorithms, wrapped so the rest of the library speaks provenance vocabulary
(record classes, relation types) rather than raw networkx.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.errors import GraphError
from repro.model.records import (
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)


class ProvenanceGraph:
    """Typed directed multigraph over provenance records."""

    def __init__(self, name: str = "provenance") -> None:
        self.name = name
        self._graph = nx.MultiDiGraph(name=name)
        self._records: Dict[str, ProvenanceRecord] = {}
        # Typed-adjacency caches for the rule engine's hot path:
        # node id → relation type → relations, built lazily per node from
        # the same networkx iteration the uncached path uses (so edge order
        # is identical), invalidated per endpoint on mutation.
        self._in_cache: Dict[str, Dict[str, List[RelationRecord]]] = {}
        self._out_cache: Dict[str, Dict[str, List[RelationRecord]]] = {}

    # -- construction --------------------------------------------------------

    def add_node_record(self, record: ProvenanceRecord) -> None:
        """Add a node record (idempotent for identical records)."""
        if isinstance(record, RelationRecord):
            raise GraphError(
                f"{record.record_id} is a relation; use add_relation_record"
            )
        existing = self._records.get(record.record_id)
        if existing is not None and existing != record:
            raise GraphError(
                f"conflicting node record for id {record.record_id}"
            )
        self._records[record.record_id] = record
        self._graph.add_node(record.record_id)

    def add_relation_record(self, relation: RelationRecord) -> None:
        """Add an edge; both endpoints must already be nodes.

        Dangling relations are a fact of life in partially managed processes
        (the node's event was never captured); callers decide whether to
        skip or raise — the graph itself refuses silently-broken edges.
        """
        if relation.source_id not in self._records:
            raise GraphError(
                f"relation {relation.record_id}: unknown source "
                f"{relation.source_id}"
            )
        if relation.target_id not in self._records:
            raise GraphError(
                f"relation {relation.record_id}: unknown target "
                f"{relation.target_id}"
            )
        self._graph.add_edge(
            relation.source_id,
            relation.target_id,
            key=relation.record_id,
            relation=relation,
        )
        self._out_cache.pop(relation.source_id, None)
        self._in_cache.pop(relation.target_id, None)

    # -- nodes ---------------------------------------------------------------

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    def node(self, record_id: str) -> ProvenanceRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise GraphError(f"no node {record_id!r} in graph") from None

    def nodes(
        self,
        record_class: Optional[RecordClass] = None,
        entity_type: Optional[str] = None,
    ) -> List[ProvenanceRecord]:
        """All node records, optionally filtered by class and/or type."""
        result = []
        for record in self._records.values():
            if record_class is not None and record.record_class is not record_class:
                continue
            if entity_type is not None and record.entity_type != entity_type:
                continue
            result.append(record)
        return result

    @property
    def node_count(self) -> int:
        return len(self._records)

    # -- edges ---------------------------------------------------------------

    def edges(
        self, relation_type: Optional[str] = None
    ) -> List[RelationRecord]:
        """All relation records, optionally of one type."""
        result = []
        for __, __, data in self._graph.edges(data=True):
            relation = data["relation"]
            if relation_type is None or relation.entity_type == relation_type:
                result.append(relation)
        return result

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def edges_from(
        self, record_id: str, relation_type: Optional[str] = None
    ) -> List[RelationRecord]:
        """Outgoing relations of a node, optionally of one type."""
        if record_id not in self._records:
            return []
        if relation_type is None:
            return [
                data["relation"]
                for __, __, data in self._graph.out_edges(
                    record_id, data=True
                )
            ]
        per_type = self._out_cache.get(record_id)
        if per_type is None:
            per_type = {}
            for __, __, data in self._graph.out_edges(record_id, data=True):
                relation = data["relation"]
                per_type.setdefault(relation.entity_type, []).append(relation)
            self._out_cache[record_id] = per_type
        return list(per_type.get(relation_type, ()))

    def edges_to(
        self, record_id: str, relation_type: Optional[str] = None
    ) -> List[RelationRecord]:
        """Incoming relations of a node, optionally of one type."""
        if record_id not in self._records:
            return []
        if relation_type is None:
            return [
                data["relation"]
                for __, __, data in self._graph.in_edges(record_id, data=True)
            ]
        per_type = self._in_cache.get(record_id)
        if per_type is None:
            per_type = {}
            for __, __, data in self._graph.in_edges(record_id, data=True):
                relation = data["relation"]
                per_type.setdefault(relation.entity_type, []).append(relation)
            self._in_cache[record_id] = per_type
        return list(per_type.get(relation_type, ()))

    def has_edge(
        self, source_id: str, target_id: str, relation_type: Optional[str] = None
    ) -> bool:
        """Whether an edge (optionally of a type) exists between two nodes.

        This is the primitive compliance verification reduces to: "the
        compliance status of the internal control point is verified by
        checking if the edges specified in the definition […] exist" (§II.C).
        """
        if not self._graph.has_edge(source_id, target_id):
            return False
        if relation_type is None:
            return True
        edge_data = self._graph.get_edge_data(source_id, target_id)
        return any(
            data["relation"].entity_type == relation_type
            for data in edge_data.values()
        )

    # -- interop -------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """The underlying networkx graph (shared, do not mutate)."""
        return self._graph

    def subgraph(self, record_ids: List[str]) -> "ProvenanceGraph":
        """A new graph containing only the given nodes and edges among them."""
        sub = ProvenanceGraph(name=f"{self.name}-sub")
        wanted = set(record_ids)
        for record_id in record_ids:
            if record_id in self._records:
                sub.add_node_record(self._records[record_id])
        for relation in self.edges():
            if relation.source_id in wanted and relation.target_id in wanted:
                if relation.source_id in sub._records and (
                    relation.target_id in sub._records
                ):
                    sub.add_relation_record(relation)
        return sub

    def census(self) -> Dict[str, int]:
        """Node/edge counts by class and relation type (Figure 2 stats)."""
        counts: Dict[str, int] = {}
        for record in self._records.values():
            key = f"node:{record.record_class.value}"
            counts[key] = counts.get(key, 0) + 1
        for relation in self.edges():
            key = f"edge:{relation.entity_type}"
            counts[key] = counts.get(key, 0) + 1
        return counts
