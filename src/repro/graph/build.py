"""Building provenance graphs from a store.

Building is a projection: node records become nodes, relation records become
edges.  Relations pointing at never-captured nodes (normal under partial
visibility) are *skipped and counted*, never silently invented — the count
feeds the visibility metrics of experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.graph.graph import ProvenanceGraph
from repro.model.records import RelationRecord
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore


@dataclass
class BuildReport:
    """What happened while building a graph from a store."""

    nodes: int = 0
    edges: int = 0
    dangling_relations: List[str] = field(default_factory=list)

    @property
    def dangling_count(self) -> int:
        return len(self.dangling_relations)


def graph_from_records(
    records: Iterable,
    name: str = "provenance",
    report: Optional[BuildReport] = None,
) -> ProvenanceGraph:
    """Project an already-selected record sequence into a graph.

    The record-level twin of :func:`build_graph`: callers that hold a
    trace's records — e.g. a sweep that grouped one storage-backend scan by
    trace — skip the per-trace store query.  Records must be in append
    order; dangling relations are skipped and counted exactly as in
    :func:`build_graph`.
    """
    graph = ProvenanceGraph(name=name)
    relations: List[RelationRecord] = []
    for record in records:
        if isinstance(record, RelationRecord):
            relations.append(record)
        else:
            graph.add_node_record(record)

    dangling: List[str] = []
    for relation in relations:
        if relation.source_id in graph and relation.target_id in graph:
            graph.add_relation_record(relation)
        else:
            dangling.append(relation.record_id)

    if report is not None:
        report.nodes = graph.node_count
        report.edges = graph.edge_count
        report.dangling_relations = dangling
    return graph


def build_graph(
    store: ProvenanceStore,
    app_id: Optional[str] = None,
    name: Optional[str] = None,
    report: Optional[BuildReport] = None,
    as_of: Optional[int] = None,
) -> ProvenanceGraph:
    """Build a graph from *store*, optionally restricted to one trace.

    Args:
        store: the provenance store.
        app_id: when given, only records of that trace are included.
        name: graph name; defaults to the store model name or the trace id.
        report: optional build report filled with node/edge/dangling counts.
        as_of: when given, only records with ``timestamp <= as_of`` are
            included — the graph *as the auditor would have seen it* at that
            simulated time.  Relations to not-yet-captured nodes count as
            dangling, exactly like under partial visibility.
    """
    if name is None:
        name = app_id or (store.model.name if store.model else "provenance")
    query = RecordQuery(app_id=app_id, until=as_of)
    return graph_from_records(store.select(query), name=name, report=report)


def build_trace_graph(
    store: ProvenanceStore,
    app_id: str,
    report: Optional[BuildReport] = None,
    as_of: Optional[int] = None,
) -> ProvenanceGraph:
    """Build the graph of one execution trace (Figure 2 is one of these)."""
    return build_graph(store, app_id=app_id, report=report, as_of=as_of)
