"""The provenance graph.

"Each relevant event produced by the IT system is stored in a provenance
graph as a particular type of node or edge" (§II).  This package turns store
contents into a typed directed multigraph and provides the operations the
rest of the system needs:

- :mod:`repro.graph.graph` — the graph structure itself,
- :mod:`repro.graph.build` — building graphs from a store (whole store or
  per trace),
- :mod:`repro.graph.traversal` — typed navigation (follow a relation type
  from a node, reachability),
- :mod:`repro.graph.match` — subgraph pattern matching; "a business control
  point is a sub graph of the provenance graph" (§II.C),
- :mod:`repro.graph.serialize` — DOT/JSON/text rendering (Figure 2).
"""

from repro.graph.graph import ProvenanceGraph
from repro.graph.build import build_graph, build_trace_graph, graph_from_records
from repro.graph.match import EdgePattern, GraphPattern, NodePattern, match_pattern
from repro.graph.traversal import follow, neighbors, reachable
from repro.graph.serialize import to_dot, to_json, trace_census

__all__ = [
    "EdgePattern",
    "GraphPattern",
    "NodePattern",
    "ProvenanceGraph",
    "build_graph",
    "build_trace_graph",
    "follow",
    "graph_from_records",
    "match_pattern",
    "neighbors",
    "reachable",
    "to_dot",
    "to_json",
    "trace_census",
]
