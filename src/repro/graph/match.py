"""Subgraph pattern matching.

"Hence, it is possible to claim that a business control point is a sub graph
of the provenance graph" (§II.C).  Deployed control points compile to a
:class:`GraphPattern`: node patterns constrained by class/type/attribute
predicates and edge patterns between them.  Matching finds all assignments
of graph nodes to pattern nodes such that every edge pattern is realized.

The matcher is a straightforward backtracking search ordered by candidate
count — control patterns are small (a handful of nodes), so worst-case
complexity is irrelevant in practice; tests exercise correctness including
multi-match and no-match cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PatternError
from repro.graph.graph import ProvenanceGraph
from repro.model.records import ProvenanceRecord, RecordClass
from repro.store.query import AttributePredicate


@dataclass(frozen=True)
class NodePattern:
    """A pattern node: a variable plus constraints on the record it binds.

    Attributes:
        var: the variable name (e.g. ``request`` for "the current job
            request" definition of the paper's worked example).
        record_class: required record class, or None.
        entity_type: required entity type, or None.
        predicates: attribute constraints, all of which must hold.
        optional: when True, the pattern still matches if no node can bind
            this variable — the binding is simply absent.  Evaluation uses
            this to distinguish "artifact missing" from "hard mismatch".
    """

    var: str
    record_class: Optional[RecordClass] = None
    entity_type: Optional[str] = None
    predicates: Tuple[AttributePredicate, ...] = field(default_factory=tuple)
    optional: bool = False

    def admits(self, record: ProvenanceRecord) -> bool:
        if (
            self.record_class is not None
            and record.record_class is not self.record_class
        ):
            return False
        if (
            self.entity_type is not None
            and record.entity_type != self.entity_type
        ):
            return False
        return all(p.matches(record) for p in self.predicates)


@dataclass(frozen=True)
class EdgePattern:
    """A required edge between two pattern variables.

    The edge is required only when both endpoints actually bind (patterns
    with optional endpoints degrade gracefully).
    """

    source_var: str
    target_var: str
    relation_type: Optional[str] = None


@dataclass
class GraphPattern:
    """A small subgraph pattern: nodes + required edges."""

    nodes: List[NodePattern] = field(default_factory=list)
    edges: List[EdgePattern] = field(default_factory=list)

    def node_pattern(self, var: str) -> NodePattern:
        for pattern in self.nodes:
            if pattern.var == var:
                return pattern
        raise PatternError(f"no node pattern for variable {var!r}")

    def validate(self) -> None:
        """Raise :class:`PatternError` on structural problems."""
        names = [n.var for n in self.nodes]
        if len(names) != len(set(names)):
            raise PatternError("duplicate pattern variable")
        known = set(names)
        for edge in self.edges:
            if edge.source_var not in known:
                raise PatternError(
                    f"edge references unknown variable {edge.source_var!r}"
                )
            if edge.target_var not in known:
                raise PatternError(
                    f"edge references unknown variable {edge.target_var!r}"
                )


Binding = Dict[str, str]  # var -> record_id


def _candidates(
    graph: ProvenanceGraph, pattern: NodePattern
) -> List[ProvenanceRecord]:
    return [
        record
        for record in graph.nodes(pattern.record_class, pattern.entity_type)
        if pattern.admits(record)
    ]


def match_pattern(
    graph: ProvenanceGraph, pattern: GraphPattern
) -> List[Binding]:
    """All complete bindings of *pattern* in *graph*.

    A binding maps every non-optional variable to a distinct node id;
    optional variables appear only when a consistent node exists.  Returns
    an empty list when the pattern cannot be satisfied.
    """
    pattern.validate()

    required = [n for n in pattern.nodes if not n.optional]
    optional = [n for n in pattern.nodes if n.optional]

    candidate_sets = {
        node.var: _candidates(graph, node) for node in pattern.nodes
    }
    # Fail fast: a required variable with no candidates cannot match.
    for node in required:
        if not candidate_sets[node.var]:
            return []

    # Order required variables by selectivity (fewest candidates first).
    order = sorted(required, key=lambda n: len(candidate_sets[n.var]))

    edges_by_vars: Dict[Tuple[str, str], List[EdgePattern]] = {}
    for edge in pattern.edges:
        edges_by_vars.setdefault((edge.source_var, edge.target_var), []).append(
            edge
        )

    def edges_ok(binding: Binding) -> bool:
        for (source_var, target_var), edge_list in edges_by_vars.items():
            if source_var not in binding or target_var not in binding:
                continue
            for edge in edge_list:
                if not graph.has_edge(
                    binding[source_var], binding[target_var], edge.relation_type
                ):
                    return False
        return True

    results: List[Binding] = []

    def backtrack(index: int, binding: Binding) -> None:
        if index == len(order):
            extended = _extend_optional(graph, binding, optional,
                                        candidate_sets, edges_ok)
            results.append(extended)
            return
        node = order[index]
        used = set(binding.values())
        for record in candidate_sets[node.var]:
            if record.record_id in used:
                continue
            binding[node.var] = record.record_id
            if edges_ok(binding):
                backtrack(index + 1, binding)
            del binding[node.var]

    backtrack(0, {})
    return results


def _extend_optional(graph, binding, optional, candidate_sets, edges_ok):
    """Greedily bind optional variables consistent with the edges."""
    extended = dict(binding)
    for node in optional:
        used = set(extended.values())
        for record in candidate_sets[node.var]:
            if record.record_id in used:
                continue
            extended[node.var] = record.record_id
            if edges_ok(extended):
                break
            del extended[node.var]
    return extended
