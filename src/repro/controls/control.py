"""The internal-control-point artifact.

An :class:`InternalControl` packages a compiled BAL rule with the governance
metadata auditors need: description, severity, owner, and default parameter
values.  Controls that take parameters (the paper's ``<string ID>``) can be
*specialized* per deployment — e.g. one generic requisition control applied
to every requisition id found in a trace — or left parameterless to act on
"a Job Requisition" per trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.brms.bal.compiler import CompiledRule
from repro.errors import ControlError


class ControlSeverity(enum.Enum):
    """How severe a violation of the control is for risk reporting."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    CRITICAL = "critical"


@dataclass(frozen=True)
class InternalControl:
    """An authored internal control point.

    Attributes:
        name: unique control name.
        compiled: the compiled BAL rule.
        description: what business risk the control addresses.
        severity: violation severity for the dashboard.
        owner: the business person or role owning the control.
        parameter_defaults: default values for the rule's parameters.
    """

    name: str
    compiled: CompiledRule
    description: str = ""
    severity: ControlSeverity = ControlSeverity.MEDIUM
    owner: str = ""
    parameter_defaults: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ControlError("control needs a name")
        unknown = set(self.parameter_defaults) - set(self.compiled.parameters)
        if unknown:
            raise ControlError(
                f"control {self.name!r} defaults unknown parameters: "
                f"{sorted(unknown)}"
            )

    @property
    def source(self) -> str:
        """The BAL text as authored."""
        return self.compiled.source

    def unbound_parameters(
        self, parameters: Optional[Dict[str, object]] = None
    ) -> list:
        """Rule parameters still missing after defaults and *parameters*."""
        bound = set(self.parameter_defaults)
        if parameters:
            bound |= set(parameters)
        return [p for p in self.compiled.parameters if p not in bound]

    def resolve_parameters(
        self, parameters: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Defaults overlaid with call-site *parameters*; raises when any
        parameter remains unbound."""
        missing = self.unbound_parameters(parameters)
        if missing:
            raise ControlError(
                f"control {self.name!r} is missing parameters: {missing}"
            )
        resolved = dict(self.parameter_defaults)
        if parameters:
            resolved.update(parameters)
        return resolved

    def specialized(
        self, suffix: str, **parameters: object
    ) -> "InternalControl":
        """A copy bound to specific parameter values (e.g. one requisition).

        The copy's name is ``<name>[<suffix>]`` so per-instance results stay
        distinguishable on the dashboard.
        """
        merged = dict(self.parameter_defaults)
        merged.update(parameters)
        return replace(
            self,
            name=f"{self.name}[{suffix}]",
            parameter_defaults=merged,
        )
