"""Internal control points — the paper's primary contribution.

An *internal control point* is a compliance check a business user authors in
business vocabulary (BAL), which the system links automatically to the
provenance graph and evaluates per execution trace:

- :mod:`repro.controls.status` — compliance statuses and results,
- :mod:`repro.controls.control` — the control-point artifact,
- :mod:`repro.controls.authoring` — the authoring tool (vocabulary menus,
  validation, repository lifecycle) a business person uses,
- :mod:`repro.controls.binding` — materializing a deployed control as a
  Custom node wired to the data nodes its definitions bound ("the internal
  control point is generated as a custom node connected to the three data
  nodes defined by the constraints", §III),
- :mod:`repro.controls.evaluator` — evaluating controls across traces,
- :mod:`repro.controls.materializer` — the incremental core: the
  materialized (control, trace) verdict table every evaluation style
  (sweep, on-demand check, deployed) reads through,
- :mod:`repro.controls.deployment` — deployed (continuous) checking driven
  by store appends,
- :mod:`repro.controls.dashboard` — the compliance dashboard / KPIs.
"""

from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.controls.control import InternalControl
from repro.controls.authoring import ControlAuthoringTool, ValidationIssue
from repro.controls.binding import ControlBinder, ensure_control_schema
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.materializer import VerdictMaterializer, VerdictTransition
from repro.controls.deployment import ControlDeployment
from repro.controls.dashboard import ComplianceDashboard
from repro.controls.autodeploy import AutoSpecializer, ParameterBinding
from repro.controls.patterns import (
    PatternVerifier,
    StructuralControl,
    pattern_from_rule,
)

__all__ = [
    "AutoSpecializer",
    "ComplianceDashboard",
    "ComplianceEvaluator",
    "ComplianceResult",
    "ComplianceStatus",
    "ControlAuthoringTool",
    "ControlBinder",
    "ControlDeployment",
    "InternalControl",
    "ParameterBinding",
    "PatternVerifier",
    "StructuralControl",
    "VerdictMaterializer",
    "VerdictTransition",
    "pattern_from_rule",
    "ValidationIssue",
    "ensure_control_schema",
]
