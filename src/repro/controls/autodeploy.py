"""Automatic deployment of per-instance control points.

§IV lists "automatic deployment of control points to provenance graph" as
future work.  The gap it names: the paper's worked control is parametrized
by a requisition id (``<string ID>``) — someone still has to instantiate
it per requisition.  The :class:`AutoSpecializer` closes that gap: given a
parametrized control and a *binding rule* ("the parameter is the
requisition ID of each Job Requisition"), it watches the store, and for
every new instance of the subject concept it specializes and deploys one
control bound to that instance's key.

This composes with :class:`~repro.controls.deployment.ControlDeployment`,
so each auto-deployed instance then re-checks continuously like any other
deployed control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.brms.vocabulary import Vocabulary
from repro.brms.bom import MemberKind
from repro.controls.control import InternalControl
from repro.controls.deployment import ControlDeployment
from repro.errors import ControlError
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore


@dataclass(frozen=True)
class ParameterBinding:
    """How a control parameter is filled from subject instances.

    Attributes:
        parameter: the control's ``<parameter>`` name.
        concept: the business concept whose instances trigger deployment.
        phrase: the vocabulary phrase naming the instance attribute whose
            value fills the parameter (e.g. ``requisition ID``).
    """

    parameter: str
    concept: str
    phrase: str


class AutoSpecializer:
    """Deploys one specialized control per subject instance, automatically."""

    def __init__(
        self,
        deployment: ControlDeployment,
        vocabulary: Vocabulary,
    ) -> None:
        self.deployment = deployment
        self.vocabulary = vocabulary
        self.store: ProvenanceStore = deployment.store
        self._rules: List[tuple] = []  # (control, binding, node_type, attr)
        self._seen: Set[tuple] = set()  # (control name, key value)
        self._attached = False

    def register(
        self, control: InternalControl, binding: ParameterBinding
    ) -> None:
        """Register a parametrized control for automatic specialization.

        Validates that the binding actually fills the control's remaining
        parameters and that the phrase resolves to an attribute of the
        concept.
        """
        remaining = control.unbound_parameters()
        if remaining != [binding.parameter]:
            raise ControlError(
                f"control {control.name!r} has unbound parameters "
                f"{remaining}; the binding fills only "
                f"{binding.parameter!r}"
            )
        member = self.vocabulary.member(binding.concept, binding.phrase)
        if member.kind is not MemberKind.ATTRIBUTE:
            raise ControlError(
                f"binding phrase {binding.phrase!r} is not an attribute of "
                f"{binding.concept!r}"
            )
        node_type = self.vocabulary.concept(binding.concept).node_type
        self._rules.append((control, binding, node_type, member.attribute))
        self._attach()
        # Specialize for instances that already exist.
        for record in self.store.records():
            self._consider(record)

    # -- plumbing ----------------------------------------------------------

    def _attach(self) -> None:
        if not self._attached:
            self.store.subscribe(self._consider)
            self._attached = True

    def _consider(self, record: ProvenanceRecord) -> None:
        for control, binding, node_type, attribute in self._rules:
            if record.entity_type != node_type:
                continue
            key = record.get(attribute)
            if key is None:
                continue
            seen_key = (control.name, key)
            if seen_key in self._seen:
                continue
            self._seen.add(seen_key)
            specialized = control.specialized(
                str(key), **{binding.parameter: key}
            )
            self.deployment.deploy(specialized)

    @property
    def deployed_instances(self) -> int:
        """How many specialized controls have been auto-deployed."""
        return len(self._seen)

    def instance_names(self) -> List[str]:
        """Names of the auto-deployed specialized controls."""
        return sorted(f"{name}[{key}]" for name, key in self._seen)
