"""Linking controls to the provenance graph.

"The internal control is created during the execution of the traces as a
custom node and connected to the Job Requisition, Approval Status and the
Candidate List data nodes" (§II.C); "linking the internal controls to the
provenance graph is done automatically" (§III).

The :class:`ControlBinder` materializes a compliance result as provenance:
a Custom record of type ``controlpoint`` carrying the control name and
status, plus ``checks*`` relation records to every node the rule's
definitions bound.  Because these are ordinary store rows, the control
point *is* a subgraph of the provenance graph, queryable like any other
provenance — which is how dashboards read compliance without a side channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.controls.status import ComplianceResult
from repro.errors import BindingError
from repro.ids import IdFactory
from repro.model.records import (
    CustomRecord,
    ProvenanceRecord,
    RecordClass,
    RelationRecord,
)
from repro.model.schema import (
    NodeTypeSpec,
    ProvenanceDataModel,
    RelationTypeSpec,
)
from repro.store.store import ProvenanceStore

CONTROL_NODE_TYPE = "controlpoint"

# Relation type emitted per record class of the checked node.
_CHECK_RELATIONS = {
    RecordClass.DATA: "checks",
    RecordClass.RESOURCE: "checksResource",
    RecordClass.TASK: "checksTask",
    RecordClass.CUSTOM: "checksCustom",
}


def ensure_control_schema(model: ProvenanceDataModel) -> None:
    """Declare the control-point node and relation types on *model*.

    Idempotent; deployment calls it so business scopes need no manual schema
    work before controls arrive (the Custom class is "an extension point").
    """
    if not model.has_node_type(CONTROL_NODE_TYPE):
        model.add_node_type(
            NodeTypeSpec(
                name=CONTROL_NODE_TYPE,
                record_class=RecordClass.CUSTOM,
                label="Internal Control",
            )
        )
    for record_class, relation_name in _CHECK_RELATIONS.items():
        if not model.has_relation_type(relation_name):
            model.add_relation_type(
                RelationTypeSpec(
                    name=relation_name,
                    source_class=RecordClass.CUSTOM,
                    target_class=record_class,
                    label="checks",
                )
            )


class ControlBinder:
    """Writes control-point nodes and their edges into a store."""

    def __init__(
        self, store: ProvenanceStore, ids: Optional[IdFactory] = None
    ) -> None:
        self.store = store
        self.ids = ids or IdFactory()
        if store.model is not None:
            ensure_control_schema(store.model)

    def _next_id(self, prefix: str) -> str:
        record_id = self.ids.next(prefix)
        while record_id in self.store:
            record_id = self.ids.next(prefix)
        return record_id

    def bind(self, result: ComplianceResult) -> CustomRecord:
        """Materialize *result* as a control-point subgraph; returns the
        custom node.  The result's ``control_node_id`` is filled in."""
        control_node = CustomRecord.create(
            record_id=self._next_id("CTL"),
            app_id=result.trace_id,
            entity_type=CONTROL_NODE_TYPE,
            timestamp=result.checked_at,
            attributes={
                "control": result.control_name,
                "status": result.status.value,
                "alerts": "; ".join(result.alerts),
            },
        )
        self.store.append(control_node)

        # Edges: definition-bound nodes get their variable name; nodes the
        # conditions navigated to without naming get "condition".
        edges: Dict[str, str] = {}
        for node_id in result.touched_nodes:
            edges[node_id] = "condition"
        for var, node_id in sorted(result.bound_nodes.items()):
            if node_id is not None:
                edges[node_id] = var

        for node_id in sorted(edges):
            try:
                target = self.store.get(node_id)
            except Exception as exc:
                raise BindingError(
                    f"control {result.control_name!r} bound unknown node "
                    f"{node_id!r}"
                ) from exc
            self.store.append(
                RelationRecord.create(
                    record_id=self._next_id("CTLE"),
                    app_id=result.trace_id,
                    entity_type=_CHECK_RELATIONS[target.record_class],
                    source_id=control_node.record_id,
                    target_id=node_id,
                    timestamp=result.checked_at,
                    attributes={"binds": edges[node_id]},
                )
            )
        result.control_node_id = control_node.record_id
        return control_node

    def bound_results(
        self, trace_id: Optional[str] = None
    ) -> List[ProvenanceRecord]:
        """All control-point nodes in the store (optionally one trace)."""
        from repro.store.query import RecordQuery

        query = RecordQuery(
            record_class=RecordClass.CUSTOM,
            entity_type=CONTROL_NODE_TYPE,
            app_id=trace_id,
        )
        return self.store.select(query)
