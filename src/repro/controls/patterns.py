"""Structural verification: control points as subgraph patterns.

§II.C offers a second, purely structural verification style: "A business
control point is satisfied if certain vertices and edges exist in the
provenance graph.  Hence, it is possible to claim that a business control
point is a sub graph of the provenance graph. […] The compliance status of
the internal control point is verified by checking if the edges specified
in the definition of internal control point exist."

:func:`pattern_from_rule` compiles the *structural skeleton* of a BAL rule
— the anchor instance binding with its equality predicates, plus every
``<relation phrase> of <anchor>`` navigation the conditions require to be
non-null — into a :class:`~repro.graph.match.GraphPattern`.
:class:`PatternVerifier` then checks traces by pure subgraph existence.

The structural style is *weaker* than full rule evaluation (it cannot see
value comparisons like "the approver email … is not the submitter email"),
but it is exactly what the paper describes for edge-existence controls, it
needs no rule engine at check time, and for controls whose conditions are
all of the ``X is not null`` form it provably agrees with the engine —
the tests assert that agreement on the paper's worked control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.brms.bal import ast
from repro.brms.bal.compiler import CompiledRule
from repro.brms.vocabulary import Vocabulary
from repro.brms.bom import MemberKind
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.errors import PatternError
from repro.graph.build import build_trace_graph
from repro.graph.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    match_pattern,
)
from repro.store.query import AttributePredicate
from repro.store.store import ProvenanceStore


def _literal_value(node: ast.Node) -> Optional[object]:
    if isinstance(node, ast.Literal):
        return node.value
    return None


def _anchor_predicates(
    where: Optional[ast.Node], vocabulary: Vocabulary, concept: str
) -> Tuple[AttributePredicate, ...]:
    """Equality predicates of the anchor's where-clause, where extractable.

    Only ``the <attribute phrase> of this is <literal>`` conjuncts become
    attribute predicates; anything else is ignored (the structural pattern
    under-approximates, it never over-constrains on things it cannot see).
    """
    predicates: List[AttributePredicate] = []

    def visit(node: Optional[ast.Node]) -> None:
        if node is None:
            return
        if isinstance(node, ast.And):
            for condition in node.conditions:
                visit(condition)
            return
        if not isinstance(node, ast.Comparison) or node.op != "eq":
            return
        left, right = node.left, node.right
        if not isinstance(left, ast.Navigation):
            left, right = right, left
        if not isinstance(left, ast.Navigation):
            return
        if not isinstance(left.target, ast.ThisRef):
            return
        value = _literal_value(right)
        if value is None:
            return
        member = vocabulary.find_member(concept, left.phrase)
        if member is None or member.kind is not MemberKind.ATTRIBUTE:
            return
        predicates.append(
            AttributePredicate(member.attribute, "==", value)
        )

    visit(where)
    return tuple(predicates)


def _required_relations(
    rule: ast.Rule, anchor_var: str, vocabulary: Vocabulary, concept: str
) -> List[Tuple[str, str]]:
    """(phrase, relation_type) pairs the condition requires to exist.

    Collected from ``the <relation phrase> of '<anchor>' is not null``
    conditions (directly or inside ``all of`` blocks and conjunctions).
    """
    required: List[Tuple[str, str]] = []

    def visit(node: ast.Node) -> None:
        if isinstance(node, ast.And):
            for condition in node.conditions:
                visit(condition)
            return
        if isinstance(node, ast.Comparison) and node.op == "not_null":
            navigation = node.left
            if not isinstance(navigation, ast.Navigation):
                return
            target = navigation.target
            if not (isinstance(target, ast.VarRef)
                    and target.name == anchor_var):
                return
            member = vocabulary.find_member(concept, navigation.phrase)
            if member is None or member.kind is not MemberKind.RELATION:
                return
            required.append((navigation.phrase, member.relation_type))

    visit(rule.condition)
    return required


@dataclass(frozen=True)
class StructuralControl:
    """A control compiled to its subgraph pattern.

    Attributes:
        name: control name.
        anchor_pattern: matches the control's subject node.
        full_pattern: anchor + one node/edge per required relation.
        required_relations: (phrase, relation type) pairs checked.
    """

    name: str
    anchor_pattern: GraphPattern
    full_pattern: GraphPattern
    required_relations: Tuple[Tuple[str, str], ...]


def pattern_from_rule(
    compiled: CompiledRule, vocabulary: Vocabulary
) -> StructuralControl:
    """Compile a rule's structural skeleton to graph patterns.

    Raises :class:`PatternError` when the rule has no instance-binding
    anchor (a purely computational rule has no subgraph to check).
    """
    anchor_var = compiled.anchor_variable
    if anchor_var is None:
        raise PatternError(
            f"rule {compiled.name!r} has no instance binding to anchor a "
            f"subgraph pattern"
        )
    binder = None
    for definition in compiled.rule.definitions:
        if definition.var == anchor_var:
            binder = definition.binder
            break
    assert isinstance(binder, ast.InstanceBinding)
    bom_class = vocabulary.concept(binder.concept)
    predicates = _anchor_predicates(
        binder.where, vocabulary, binder.concept
    )
    anchor_node = NodePattern(
        var="anchor",
        entity_type=bom_class.node_type,
        predicates=predicates,
    )
    anchor_pattern = GraphPattern(nodes=[anchor_node])

    required = _required_relations(
        compiled.rule, anchor_var, vocabulary, binder.concept
    )
    nodes = [anchor_node]
    edges = []
    for index, (phrase, relation_type) in enumerate(required):
        var = f"evidence_{index}"
        nodes.append(NodePattern(var=var))
        # Verbalized relation members traverse in-edges: evidence -> anchor.
        edges.append(EdgePattern(var, "anchor", relation_type))
    full_pattern = GraphPattern(nodes=nodes, edges=edges)
    full_pattern.validate()
    return StructuralControl(
        name=compiled.name,
        anchor_pattern=anchor_pattern,
        full_pattern=full_pattern,
        required_relations=tuple(required),
    )


class PatternVerifier:
    """Checks structural controls by subgraph existence (§II.C style)."""

    def __init__(self, store: ProvenanceStore) -> None:
        self.store = store

    def check_trace(
        self, control: StructuralControl, trace_id: str
    ) -> ComplianceResult:
        graph = build_trace_graph(self.store, trace_id)
        anchors = match_pattern(graph, control.anchor_pattern)
        if not anchors:
            status = ComplianceStatus.NOT_APPLICABLE
        elif match_pattern(graph, control.full_pattern):
            status = ComplianceStatus.SATISFIED
        else:
            status = ComplianceStatus.VIOLATED
        return ComplianceResult(
            control_name=control.name, trace_id=trace_id, status=status
        )

    def check_all_traces(
        self, control: StructuralControl
    ) -> List[ComplianceResult]:
        return [
            self.check_trace(control, trace_id)
            for trace_id in self.store.app_ids()
        ]
