"""Materialized compliance verdicts — the incremental evaluation core.

§II.A promises that a deployed control "emits results in real-time"; the
run-time-compliance literature frames that as maintaining a *verdict state*
under event arrival rather than recomputing it by sweeps.  The
:class:`VerdictMaterializer` is that state: a materialized
``(control, trace) → ComplianceResult`` table kept current by dirty-pair
tracking driven from store appends (via the store's change feed / observer
fan-out), so that one appended record costs O(affected trace) — never
O(store).

Every existing evaluation style is a *view* over this one table:

- **batch sweep** (:meth:`ComplianceEvaluator.run <repro.controls.
  evaluator.ComplianceEvaluator.run>`) — :meth:`sweep`: drain the dirty
  pairs, then read the whole table in canonical (trace, control) order,
- **on-demand check** (``check_trace``) — :meth:`check`: a targeted
  refresh of one pair,
- **deployed controls** (:class:`~repro.controls.deployment.
  ControlDeployment`) — :meth:`refresh` after appends, with per-control
  *relevance* filters deciding which appends dirty which controls, and
  listeners receiving each refreshed verdict as a
  :class:`VerdictTransition` delta.

Because a clean pair's stored verdict is exactly what re-evaluating the
unchanged trace would produce (evaluation is deterministic and
``checked_at`` is a function of the trace), the table stays byte-identical
to a cold full sweep — the differential interleaving suite asserts this.

Snapshots: :meth:`save` persists the table plus the feed cursor as backend
auxiliary state keyed by a fingerprint of the registered controls;
:meth:`restore` reloads it and replays ``changes_since(cursor)`` to mark
exactly the traces touched while the snapshot was cold.  On SQLite this
survives close/reopen, so ``check --incremental`` against a ``--db`` only
re-evaluates what changed since the last run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.controls.control import InternalControl
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.errors import StoreError
from repro.faults.points import crash_point
from repro.model.records import ProvenanceRecord, RelationRecord
from repro.store.cursor import (
    cursor_covers,
    cursor_from_wire,
    cursor_to_wire,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.controls.evaluator import ComplianceEvaluator

#: Version tag of the snapshot wire format.
_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class VerdictTransition:
    """One verdict delta: a (control, trace) pair got a fresh result.

    ``previous`` is the status the pair held before this refresh (``None``
    for the first materialization).  ``changed`` distinguishes actual
    status flips — what dashboards and audit logs care about — from
    re-confirmations of the same status on new evidence.
    """

    result: ComplianceResult
    previous: Optional[ComplianceStatus]

    @property
    def control_name(self) -> str:
        return self.result.control_name

    @property
    def trace_id(self) -> str:
        return self.result.trace_id

    @property
    def status(self) -> ComplianceStatus:
        return self.result.status

    @property
    def changed(self) -> bool:
        return self.previous is not self.result.status

    def describe(self) -> str:
        """One line: ``gm-approval @ App10: violated -> satisfied``."""
        before = self.previous.value if self.previous else "(new)"
        return (
            f"{self.control_name} @ {self.trace_id}: "
            f"{before} -> {self.status.value}"
        )


TransitionListener = Callable[[VerdictTransition], None]
IgnorePredicate = Callable[[ProvenanceRecord], bool]


class VerdictMaterializer:
    """Maintains the materialized (control, trace) verdict table.

    Args:
        evaluator: the :class:`~repro.controls.evaluator.
            ComplianceEvaluator` whose raw ``evaluate_pair`` computes
            verdicts; the materializer subscribes to its store.
        ignore: optional predicate; records it accepts never dirty
            anything (deployments use it to skip their own binder's
            control-point rows).
    """

    def __init__(
        self,
        evaluator: "ComplianceEvaluator",
        ignore: Optional[IgnorePredicate] = None,
    ) -> None:
        self.evaluator = evaluator
        self.store = evaluator.store
        self.ignore = ignore
        self._controls: Dict[str, InternalControl] = {}
        # Per control: node types whose arrival dirties it; None = every
        # record of the trace does (the exact-sweep-parity default).
        self._relevance: Dict[str, Optional[Set[str]]] = {}
        self._verdicts: Dict[Tuple[str, str], ComplianceResult] = {}
        # Dirty (control, trace) pairs in first-marked order (dict keys:
        # deduped and FIFO, like the deployment's old tracking).
        self._dirty: Dict[Tuple[str, str], None] = {}
        self._listeners: List[TransitionListener] = []
        #: change-feed cursor: the store seq already folded into the table
        #: or the dirty set.
        self.cursor = self.store.last_seq()
        #: (control, trace) evaluations actually run.
        self.refreshes = 0
        #: monotonic transition epoch: bumped whenever the materialized
        #: view (or what it would answer) may have changed — new verdicts,
        #: freshly dirtied pairs, registry changes, snapshot restores.
        #: Read caches key on it to detect staleness without locking.
        self.epoch = 0
        self.store.subscribe(self._on_append)

    # -- control registry ----------------------------------------------------

    def register(
        self,
        control: InternalControl,
        relevant_types: Optional[Set[str]] = None,
    ) -> bool:
        """Track *control*; marks every known trace dirty for it.

        Registering the identical control object again is a no-op (so
        repeated sweeps over the same control set stay incremental); a
        *different* control under the same name replaces it and forces a
        full re-materialization of that control's column.  Returns whether
        anything new was registered.
        """
        existing = self._controls.get(control.name)
        if existing is control:
            if relevant_types is not None:
                self._relevance[control.name] = set(relevant_types)
            return False
        self._controls[control.name] = control
        self._relevance[control.name] = (
            set(relevant_types) if relevant_types is not None else None
        )
        for trace_id in self.store.app_ids():
            self._dirty.setdefault((control.name, trace_id))
        self.epoch += 1
        return True

    def unregister(self, name: str) -> None:
        """Stop tracking a control.  Its materialized verdicts remain
        readable, but dirty pairs for it are skipped at refresh time."""
        self._controls.pop(name, None)
        self._relevance.pop(name, None)
        self.epoch += 1

    def registered(self, name: str) -> bool:
        return name in self._controls

    @property
    def controls(self) -> List[InternalControl]:
        return list(self._controls.values())

    # -- reads ---------------------------------------------------------------

    def latest(
        self, control_name: str, trace_id: str
    ) -> Optional[ComplianceResult]:
        """The materialized verdict of one pair (may be pending-dirty)."""
        return self._verdicts.get((control_name, trace_id))

    def all_latest(self) -> List[ComplianceResult]:
        """Every materialized verdict, in first-materialized order."""
        return list(self._verdicts.values())

    @property
    def dirty_count(self) -> int:
        """How many (control, trace) pairs await a refresh."""
        return len(self._dirty)

    def dirty_traces(self) -> List[str]:
        """Distinct trace ids with at least one dirty pair, FIFO order."""
        seen: Dict[str, None] = {}
        for __, trace_id in self._dirty:
            seen.setdefault(trace_id)
        return list(seen)

    def dirty_traces_by_shard(self) -> Dict[int, List[str]]:
        """Dirty traces grouped by home shard (FIFO within each shard).

        The scatter-gather view of the dirty set: each shard's list is an
        independent work unit — its traces share a partition and nothing
        outside it — which is how the forked sweep assigns whole shards
        to workers.  Unsharded stores report everything under shard 0.
        """
        grouped: Dict[int, List[str]] = {}
        for trace_id in self.dirty_traces():
            grouped.setdefault(
                self.store.shard_index(trace_id), []
            ).append(trace_id)
        return grouped

    # -- listeners -----------------------------------------------------------

    def subscribe(self, listener: TransitionListener) -> None:
        """Receive a :class:`VerdictTransition` for every refreshed pair."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: TransitionListener) -> None:
        self._listeners.remove(listener)

    # -- dirty tracking ------------------------------------------------------

    def _on_append(self, record: ProvenanceRecord) -> None:
        # Store observers fire once per commit, in order, so the store's
        # cursor at this moment is exactly this record's seq.
        self.cursor = self.store.last_seq()
        self.epoch += 1
        if self.ignore is not None and self.ignore(record):
            return
        for name in self._controls:
            if self._is_relevant(name, record):
                self._dirty.setdefault((name, record.app_id))

    def _is_relevant(self, name: str, record: ProvenanceRecord) -> bool:
        types = self._relevance.get(name)
        if types is None:
            return True
        if isinstance(record, RelationRecord):
            # A new edge can complete a control's subgraph even though its
            # endpoints arrived earlier.
            for node_id in (record.source_id, record.target_id):
                if node_id in self.store:
                    if self.store.get(node_id).entity_type in types:
                        return True
            return False
        return record.entity_type in types

    def mark(self, control_name: str, trace_id: str) -> None:
        """Explicitly dirty one pair (forces re-evaluation on refresh)."""
        self._dirty.setdefault((control_name, trace_id))
        self.epoch += 1

    def invalidate_all(self) -> None:
        """Dirty every (registered control, known trace) pair."""
        for trace_id in self.store.app_ids():
            for name in self._controls:
                self._dirty.setdefault((name, trace_id))
        self.epoch += 1

    # -- refresh -------------------------------------------------------------

    def _refresh_pair(
        self, control: InternalControl, trace_id: str
    ) -> ComplianceResult:
        self.refreshes += 1
        try:
            result = self.evaluator.evaluate_pair(control, trace_id)
        except StoreError as exc:
            # The trace's evidence could not be read — e.g. a row
            # tampered with at rest failed to decode.  An integrity
            # failure must surface as an explicit verdict (and a
            # transition, so deployed listeners hear about it), never as
            # a silent skip or a crashed sweep.
            result = ComplianceResult(
                control_name=control.name,
                trace_id=trace_id,
                status=ComplianceStatus.ERROR,
                alerts=[f"evaluation failed: {exc}"],
            )
        self._store_result(result)
        return result

    def _store_result(self, result: ComplianceResult) -> None:
        key = (result.control_name, result.trace_id)
        previous = self._verdicts.get(key)
        self._verdicts[key] = result
        self.epoch += 1
        transition = VerdictTransition(
            result=result,
            previous=previous.status if previous is not None else None,
        )
        for listener in list(self._listeners):
            listener(transition)

    def refresh(self) -> List[ComplianceResult]:
        """Evaluate every dirty pair once, in first-marked order.

        Pairs whose control was unregistered while dirty are skipped (and
        forgotten).  This is the deployed-controls drain: a burst of
        records for one trace costs one evaluation per affected control,
        not one per record.
        """
        pending, self._dirty = list(self._dirty), {}
        results = []
        for control_name, trace_id in pending:
            control = self._controls.get(control_name)
            if control is None:
                continue
            results.append(self._refresh_pair(control, trace_id))
        return results

    def check(
        self, control: InternalControl, trace_id: str
    ) -> ComplianceResult:
        """Targeted refresh of one pair; memoized while the trace is clean.

        Registers the control (so future appends dirty the pair) and
        evaluates only if the pair is dirty or was never materialized —
        otherwise the stored verdict is returned, which on an unchanged
        trace is exactly what re-evaluating would produce.
        """
        self.register(control)
        key = (control.name, trace_id)
        if key in self._dirty:
            del self._dirty[key]
            return self._refresh_pair(control, trace_id)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        return self._refresh_pair(control, trace_id)

    def sweep(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Optional[Iterable[str]] = None,
        jobs: Optional[int] = None,
    ) -> List[ComplianceResult]:
        """The batch view: refresh what is stale, then read the table.

        Returns one row per (trace, control) in canonical sweep order —
        traces in first-seen order (or the *trace_ids* given), controls in
        the order passed — byte-identical to a cold full sweep.  Only
        dirty pairs are evaluated; with *jobs* > 1 the dirty partition
        (and only it) is forked across workers.
        """
        for control in controls:
            self.register(control)
        ids = (
            list(trace_ids)
            if trace_ids is not None
            else self.store.app_ids()
        )
        names = [control.name for control in controls]
        stale: List[Tuple[InternalControl, str]] = []
        for trace_id in ids:
            for control in controls:
                key = (control.name, trace_id)
                if key in self._dirty or key not in self._verdicts:
                    stale.append((control, trace_id))
        # Evaluating a pair clears its dirtiness whether it happens here or
        # in a forked worker.
        for control, trace_id in stale:
            self._dirty.pop((control.name, trace_id), None)
        if stale:
            adopted = None
            if jobs is not None and jobs > 1 and trace_ids is None:
                stale_traces = []
                seen: Set[str] = set()
                for __, trace_id in stale:
                    if trace_id not in seen:
                        seen.add(trace_id)
                        stale_traces.append(trace_id)
                adopted = self.evaluator.evaluate_forked(
                    controls, stale_traces, jobs
                )
            if adopted is not None:
                stale_keys = {(c.name, t) for c, t in stale}
                for result in adopted:
                    key = (result.control_name, result.trace_id)
                    if key in stale_keys:
                        self.refreshes += 1
                        self._store_result(result)
            else:
                try:
                    self.evaluator.prime_frames(
                        list(dict.fromkeys(t for __, t in stale)),
                        controls=controls,
                    )
                except StoreError:
                    # An unreadable row anywhere poisons the shared scan;
                    # fall through to per-pair refreshes, which confine
                    # the failure to the affected trace's verdicts.
                    pass
                for control, trace_id in stale:
                    self._refresh_pair(control, trace_id)
        # Dirty pairs of controls outside this sweep's set stay dirty; the
        # assembled view reads only the columns asked for.
        return [
            self._verdicts[(name, trace_id)]
            for trace_id in ids
            for name in names
        ]

    # -- snapshots -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Identity of the materialized state: which controls, which rules.

        Two materializers with the same fingerprint would compute the same
        table over the same rows, so a snapshot saved by one is safe for
        the other.  Controls are fingerprinted by name, BAL source, and
        bound parameter defaults; the evaluator's observable-types
        configuration is included because it changes verdicts.
        """
        observable = self.evaluator.observable_types
        basis = {
            "controls": sorted(
                (
                    control.name,
                    control.source,
                    sorted(
                        (k, repr(v))
                        for k, v in control.parameter_defaults.items()
                    ),
                )
                for control in self._controls.values()
            ),
            "observable": (
                sorted(observable) if observable is not None else None
            ),
        }
        digest = hashlib.sha256(
            json.dumps(basis, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def _state_key(self) -> str:
        return f"verdicts:{self.fingerprint()}"

    def save(self) -> None:
        """Persist the table + cursor as backend auxiliary state.

        Dirty pairs are refreshed first so the snapshot is internally
        consistent: every saved verdict is current as of the saved cursor.
        """
        self.refresh()
        crash_point("materializer.save.mid_snapshot")
        payload = json.dumps(
            {
                "version": _SNAPSHOT_VERSION,
                "cursor": cursor_to_wire(self.cursor),
                "verdicts": [
                    result.to_payload()
                    for result in self._verdicts.values()
                ],
            }
        )
        self.store.save_state(self._state_key(), payload)

    def restore(self) -> bool:
        """Reload a snapshot and catch up through the change feed.

        Returns False (leaving state untouched) when the backend has no
        snapshot for the current control set.  On success the verdicts and
        cursor are adopted, and every trace appended to after the snapshot
        cursor is marked dirty for every registered control — so the next
        refresh/sweep re-evaluates exactly the rows the snapshot missed,
        never the whole store.

        Call after :meth:`register`-ing the control set (the snapshot key
        depends on it) and before new appends arrive through this handle.
        """
        raw = self.store.load_state(self._state_key())
        if raw is None:
            return False
        snapshot = json.loads(raw)
        if snapshot.get("version") != _SNAPSHOT_VERSION:
            return False
        snap_cursor = cursor_from_wire(snapshot["cursor"])
        if not cursor_covers(self.store.last_seq(), snap_cursor):
            # The snapshot describes rows the store no longer holds — a
            # crash made the aux-state write outlive the row suffix it
            # summarized — or was taken under a different shard layout.
            # Its verdicts may cite vanished evidence, so the only safe
            # answer is a cold re-materialization.  Pre-sharding int
            # cursors compare fine against a single-shard vector (the
            # N=1 degenerate case), so old snapshots keep restoring.
            return False
        crash_point("materializer.restore.mid_restore")
        for entry in snapshot["verdicts"]:
            result = ComplianceResult.from_payload(entry)
            self._verdicts[(result.control_name, result.trace_id)] = result
        touched: Dict[str, None] = {}
        for __, record in self.store.changes_since(snap_cursor):
            touched.setdefault(record.app_id)
        for trace_id in touched:
            for name in self._controls:
                self._dirty.setdefault((name, trace_id))
        self.cursor = self.store.last_seq()
        # Traces the snapshot knew were dirtied at registration time; their
        # saved verdicts are current, so only snapshot-missed traces stay
        # dirty.
        for key in list(self._dirty):
            if key[1] not in touched and key in self._verdicts:
                del self._dirty[key]
        self.epoch += 1
        return True
