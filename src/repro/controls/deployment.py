"""Deployed controls: continuous compliance checking.

The real-time style of §II.A ("a query can be deployed into the provenance
store to emit results in real-time") applied to whole controls: a
:class:`ControlDeployment` subscribes to the store, and whenever a record
arrives whose entity type is *relevant* to a deployed control (one of the
node types behind the control's concepts), that control is re-checked for
the affected trace.  Results are written back as control-point subgraphs
(:mod:`repro.controls.binding`) and streamed to listeners (dashboards).

Under the hood this is the continuous view over the evaluator's
:class:`~repro.controls.materializer.VerdictMaterializer`: deploying a
control registers it on the shared verdict table with a per-control
relevance filter, appends dirty (control, trace) pairs through the store's
observer fan-out, and re-checks drain the dirty set — so only pairs whose
inputs changed re-evaluate, which is what makes the deployed style cheaper
than re-running the evaluator over the whole store (experiment E5 measures
exactly this).  Because the table is shared, a batch ``evaluator.run()``
and the deployment read the same verdicts instead of maintaining rival
caches.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.binding import CONTROL_NODE_TYPE, ControlBinder
from repro.controls.control import InternalControl
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.materializer import VerdictTransition
from repro.controls.status import ComplianceResult
from repro.errors import DeploymentError
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore

ResultListener = Callable[[ComplianceResult], None]


def _is_control_artifact(record: ProvenanceRecord) -> bool:
    """Rows written by a binder: control points and their ``checks`` edges.

    These must never dirty the verdict table, or every bound result would
    trigger another evaluation of the same trace — a feedback loop.
    """
    if record.entity_type == CONTROL_NODE_TYPE:
        return True
    return record.entity_type.startswith("checks")


class ControlDeployment:
    """Continuous checking of deployed controls over a live store."""

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        bind_results: bool = True,
        observable_types: Optional[Set[str]] = None,
        immediate: bool = True,
        execution_mode: str = "compiled",
    ) -> None:
        """Args:
            immediate: when True (default), every relevant append re-checks
                the affected controls at once — per-event freshness.  When
                False, appends only mark (control, trace) pairs dirty and
                :meth:`flush` evaluates each dirty pair once — micro-batched
                freshness at a fraction of the evaluations (experiment E5).
            execution_mode: rule execution back end
                (see :class:`~repro.brms.engine.RuleEngine`).  Re-checks
                reuse the engine's per-rule compiled closures, so a deployed
                control is lowered once and re-checked by direct calls.
        """
        self.store = store
        self.vocabulary = vocabulary
        self.evaluator = ComplianceEvaluator(
            store, xom, vocabulary, observable_types,
            execution_mode=execution_mode,
        )
        # The deployment is a view over the evaluator's materialized
        # verdict table; binder artifacts are invisible to dirty tracking.
        self.materializer = self.evaluator.materializer
        assert self.materializer is not None
        self.materializer.ignore = _is_control_artifact
        self.materializer.subscribe(self._on_transition)
        self.binder = ControlBinder(store) if bind_results else None
        self.immediate = immediate
        self._deployed: Set[str] = set()
        self._listeners: List[ResultListener] = []
        self._attached = False

    # -- lifecycle ------------------------------------------------------------

    def deploy(self, control: InternalControl) -> None:
        """Deploy *control*; future appends trigger re-checks.

        Existing traces are checked immediately (history replay), matching
        continuous-query semantics.
        """
        if control.name in self._deployed:
            raise DeploymentError(f"control {control.name!r} already deployed")
        if control.unbound_parameters():
            raise DeploymentError(
                f"control {control.name!r} cannot be deployed with unbound "
                f"parameters {control.unbound_parameters()}; specialize it "
                f"or give defaults"
            )
        relevant_types = {
            self.vocabulary.concept(concept).node_type
            for concept in control.compiled.concepts
        }
        self._deployed.add(control.name)
        # Registration marks every known trace dirty (history replay) and
        # scopes future dirty marking to the control's relevant node types.
        self.materializer.register(control, relevant_types=relevant_types)
        self._attach()
        if self.immediate:
            self.flush()

    def undeploy(self, name: str) -> None:
        if name not in self._deployed:
            raise DeploymentError(f"control {name!r} is not deployed")
        self._deployed.discard(name)
        self.materializer.unregister(name)

    def subscribe(self, listener: ResultListener) -> None:
        """Receive every new compliance result as it is produced."""
        self._listeners.append(listener)

    # -- results ------------------------------------------------------------------

    def latest(
        self, control_name: str, trace_id: str
    ) -> Optional[ComplianceResult]:
        """Most recent result for a (control, trace) pair."""
        return self.materializer.latest(control_name, trace_id)

    def all_latest(self) -> List[ComplianceResult]:
        """Most recent result of every (control, trace) pair."""
        return self.materializer.all_latest()

    @property
    def rechecks(self) -> int:
        """Number of (control, trace) evaluations run through the table."""
        return self.materializer.refreshes

    @property
    def dirty_count(self) -> int:
        """How many (control, trace) pairs await a flush."""
        return self.materializer.dirty_count

    # -- plumbing -------------------------------------------------------------------

    def _attach(self) -> None:
        # The materializer (subscribed at evaluator construction) marks
        # dirty pairs first; this trigger then drains them, so immediate
        # mode stays per-event fresh.
        if not self._attached:
            self.store.subscribe(self._on_append)
            self._attached = True

    def _on_append(self, record: ProvenanceRecord) -> None:
        if _is_control_artifact(record):
            # Our own binder's writes (fired mid-flush) must not re-enter.
            return
        if self.immediate:
            self.flush()

    def _on_transition(self, transition: VerdictTransition) -> None:
        # Every refresh of the shared table lands here: write the control
        # point back into the store, then fan out to listeners.
        result = transition.result
        if self.binder is not None:
            self.binder.bind(result)
        for listener in list(self._listeners):
            listener(result)

    def flush(self) -> List[ComplianceResult]:
        """Evaluate every dirty (control, trace) pair once.

        Immediate mode calls this after every append; batched mode leaves
        it to the caller (e.g. after a correlation run), which is what
        makes it cheaper — a burst of records for one trace costs one
        evaluation, not one per record.
        """
        return self.materializer.refresh()
