"""Deployed controls: continuous compliance checking.

The real-time style of §II.A ("a query can be deployed into the provenance
store to emit results in real-time") applied to whole controls: a
:class:`ControlDeployment` subscribes to the store, and whenever a record
arrives whose entity type is *relevant* to a deployed control (one of the
node types behind the control's concepts), that control is re-checked for
the affected trace.  Results are written back as control-point subgraphs
(:mod:`repro.controls.binding`) and streamed to listeners (dashboards).

Re-checks are incremental: only (control, trace) pairs whose inputs changed
re-evaluate, which is what makes the deployed style cheaper than re-running
the evaluator over the whole store (experiment E5 measures exactly this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.binding import CONTROL_NODE_TYPE, ControlBinder
from repro.controls.control import InternalControl
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.status import ComplianceResult
from repro.errors import DeploymentError
from repro.model.records import ProvenanceRecord, RelationRecord
from repro.store.store import ProvenanceStore

ResultListener = Callable[[ComplianceResult], None]


class ControlDeployment:
    """Continuous checking of deployed controls over a live store."""

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        bind_results: bool = True,
        observable_types: Optional[Set[str]] = None,
        immediate: bool = True,
        execution_mode: str = "compiled",
    ) -> None:
        """Args:
            immediate: when True (default), every relevant append re-checks
                the affected controls at once — per-event freshness.  When
                False, appends only mark (control, trace) pairs dirty and
                :meth:`flush` evaluates each dirty pair once — micro-batched
                freshness at a fraction of the evaluations (experiment E5).
            execution_mode: rule execution back end
                (see :class:`~repro.brms.engine.RuleEngine`).  Re-checks
                reuse the engine's per-rule compiled closures, so a deployed
                control is lowered once and re-checked by direct calls.
        """
        self.store = store
        self.vocabulary = vocabulary
        self.evaluator = ComplianceEvaluator(
            store, xom, vocabulary, observable_types,
            execution_mode=execution_mode,
        )
        self.binder = ControlBinder(store) if bind_results else None
        self.immediate = immediate
        self._controls: Dict[str, InternalControl] = {}
        self._relevant_types: Dict[str, Set[str]] = {}
        self._listeners: List[ResultListener] = []
        self._latest: Dict[Tuple[str, str], ComplianceResult] = {}
        # Dirty (control, trace) pairs awaiting a flush.  A dict (insertion
        # ordered, keys unique) gives both the dedup and the FIFO ordering
        # that a parallel list+set pair provided, without the possibility of
        # the two drifting apart.
        self._dirty: Dict[Tuple[str, str], None] = {}
        self._attached = False
        self.rechecks = 0  # number of (control, trace) evaluations run

    # -- lifecycle ------------------------------------------------------------

    def deploy(self, control: InternalControl) -> None:
        """Deploy *control*; future appends trigger re-checks.

        Existing traces are checked immediately (history replay), matching
        continuous-query semantics.
        """
        if control.name in self._controls:
            raise DeploymentError(f"control {control.name!r} already deployed")
        if control.unbound_parameters():
            raise DeploymentError(
                f"control {control.name!r} cannot be deployed with unbound "
                f"parameters {control.unbound_parameters()}; specialize it "
                f"or give defaults"
            )
        self._controls[control.name] = control
        self._relevant_types[control.name] = {
            self.vocabulary.concept(concept).node_type
            for concept in control.compiled.concepts
        }
        self._attach()
        for trace_id in self.store.app_ids():
            self._mark(control.name, trace_id)
        if self.immediate:
            self.flush()

    def undeploy(self, name: str) -> None:
        if name not in self._controls:
            raise DeploymentError(f"control {name!r} is not deployed")
        del self._controls[name]
        del self._relevant_types[name]

    def subscribe(self, listener: ResultListener) -> None:
        """Receive every new compliance result as it is produced."""
        self._listeners.append(listener)

    # -- results ------------------------------------------------------------------

    def latest(
        self, control_name: str, trace_id: str
    ) -> Optional[ComplianceResult]:
        """Most recent result for a (control, trace) pair."""
        return self._latest.get((control_name, trace_id))

    def all_latest(self) -> List[ComplianceResult]:
        """Most recent result of every (control, trace) pair."""
        return list(self._latest.values())

    # -- plumbing -------------------------------------------------------------------

    def _attach(self) -> None:
        if not self._attached:
            self.store.subscribe(self._on_append)
            self._attached = True

    def _on_append(self, record: ProvenanceRecord) -> None:
        # Control-point rows written by our own binder must not re-trigger
        # checks, or every result would cause another evaluation.
        if record.entity_type == CONTROL_NODE_TYPE:
            return
        if record.entity_type.startswith("checks"):
            return
        for name, control in list(self._controls.items()):
            relevant = self._relevant_types[name]
            if isinstance(record, RelationRecord):
                # A new edge can complete a control's subgraph even though
                # its endpoints arrived earlier.
                endpoints_relevant = self._edge_touches(record, relevant)
                if not endpoints_relevant:
                    continue
            elif record.entity_type not in relevant:
                continue
            self._mark(name, record.app_id)
        if self.immediate:
            self.flush()

    def _edge_touches(
        self, relation: RelationRecord, relevant: Set[str]
    ) -> bool:
        for node_id in (relation.source_id, relation.target_id):
            if node_id in self.store:
                if self.store.get(node_id).entity_type in relevant:
                    return True
        return False

    def _mark(self, control_name: str, trace_id: str) -> None:
        self._dirty.setdefault((control_name, trace_id))

    @property
    def dirty_count(self) -> int:
        """How many (control, trace) pairs await a flush."""
        return len(self._dirty)

    def flush(self) -> List[ComplianceResult]:
        """Evaluate every dirty (control, trace) pair once.

        Immediate mode calls this after every append; batched mode leaves
        it to the caller (e.g. after a correlation run), which is what
        makes it cheaper — a burst of records for one trace costs one
        evaluation, not one per record.
        """
        pending, self._dirty = list(self._dirty), {}
        results = []
        for control_name, trace_id in pending:
            control = self._controls.get(control_name)
            if control is None:  # undeployed while dirty
                continue
            results.append(self._recheck(control, trace_id))
        return results

    def _recheck(
        self, control: InternalControl, trace_id: str
    ) -> ComplianceResult:
        self.rechecks += 1
        result = self.evaluator.check_trace(control, trace_id)
        self._latest[(control.name, trace_id)] = result
        if self.binder is not None:
            self.binder.bind(result)
        for listener in list(self._listeners):
            listener(result)
        return result
