"""Compliance statuses and per-trace results.

The controls layer wraps the rule engine's verdicts in audit terminology:
a ``NOT_SATISFIED`` rule is a ``VIOLATED`` control.  ``NOT_APPLICABLE``
(the control's subject artifact does not occur in the trace) and
``UNDETERMINED`` (required artifact types are not observable under the
current capture configuration) keep evidence gaps distinct from violations,
which is what separates a useful exception report from a noisy one in a
partially managed process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.brms.engine import RuleOutcome, RuleVerdict


class ComplianceStatus(enum.Enum):
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    NOT_APPLICABLE = "not_applicable"
    UNDETERMINED = "undetermined"
    #: Evaluation itself failed — the trace's evidence could not be read
    #: (e.g. a provenance row tampered with at rest fails to decode).  An
    #: integrity failure is audit-relevant in its own right, so it
    #: surfaces as an explicit verdict, never a silent skip.
    ERROR = "error"

    @classmethod
    def from_verdict(cls, verdict: RuleVerdict) -> "ComplianceStatus":
        return _VERDICT_MAP[verdict]

    @property
    def is_conclusive(self) -> bool:
        """Whether the status is an actual verdict rather than a gap."""
        return self in (ComplianceStatus.SATISFIED, ComplianceStatus.VIOLATED)


_VERDICT_MAP = {
    RuleVerdict.SATISFIED: ComplianceStatus.SATISFIED,
    RuleVerdict.NOT_SATISFIED: ComplianceStatus.VIOLATED,
    RuleVerdict.NOT_APPLICABLE: ComplianceStatus.NOT_APPLICABLE,
    RuleVerdict.UNDETERMINED: ComplianceStatus.UNDETERMINED,
}


@dataclass
class ComplianceResult:
    """The outcome of checking one control against one trace."""

    control_name: str
    trace_id: str
    status: ComplianceStatus
    checked_at: int = 0
    alerts: List[str] = field(default_factory=list)
    bound_nodes: Dict[str, Optional[str]] = field(default_factory=dict)
    touched_nodes: List[str] = field(default_factory=list)
    control_node_id: Optional[str] = None  # set once bound into the store

    @classmethod
    def from_outcome(
        cls, outcome: RuleOutcome, checked_at: int = 0
    ) -> "ComplianceResult":
        return cls(
            control_name=outcome.rule_name,
            trace_id=outcome.trace_id,
            status=ComplianceStatus.from_verdict(outcome.verdict),
            checked_at=checked_at,
            alerts=list(outcome.alerts),
            bound_nodes=dict(outcome.bindings),
            touched_nodes=list(outcome.touched_nodes),
        )

    def describe(self) -> str:
        """One line for exception reports and dashboards."""
        text = (
            f"[{self.status.value:>14}] {self.control_name} @ {self.trace_id}"
        )
        if self.alerts:
            text += f"  ({'; '.join(self.alerts)})"
        return text

    # -- wire form (materialized-verdict snapshots) -------------------------

    def to_payload(self) -> dict:
        """JSON-serializable form; round-trips through :meth:`from_payload`.

        Every field is carried so a verdict restored from a snapshot is
        byte-identical to the one a fresh evaluation would produce on an
        unchanged trace.
        """
        return {
            "control": self.control_name,
            "trace": self.trace_id,
            "status": self.status.value,
            "checked_at": self.checked_at,
            "alerts": list(self.alerts),
            "bound_nodes": dict(self.bound_nodes),
            "touched_nodes": list(self.touched_nodes),
            "control_node_id": self.control_node_id,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ComplianceResult":
        """Rebuild a result dumped by :meth:`to_payload`."""
        return cls(
            control_name=payload["control"],
            trace_id=payload["trace"],
            status=ComplianceStatus(payload["status"]),
            checked_at=payload["checked_at"],
            alerts=list(payload["alerts"]),
            bound_nodes=dict(payload["bound_nodes"]),
            touched_nodes=list(payload["touched_nodes"]),
            control_node_id=payload.get("control_node_id"),
        )
