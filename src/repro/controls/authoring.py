"""The control authoring tool.

"The internal control authoring tool (ILOG JRules) provides for editing
capability in natural language.  The business vocabulary generated in BOM is
provided by using drop down menus in the rule editing tool" (§III).  The
:class:`ControlAuthoringTool` is that surface, headless: vocabulary menus,
non-throwing validation (editors show problems, they don't crash), and the
author → deploy lifecycle over a rule repository.

This is the component that closes the paper's IT gap: nothing here touches
the application code, the store schema, or the graph — only vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.brms.bal.compiler import BalCompiler
from repro.brms.repository import RuleRepository
from repro.brms.vocabulary import Vocabulary
from repro.controls.control import ControlSeverity, InternalControl
from repro.errors import BalCompileError, BalSyntaxError, ControlError


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating rule text in the editor."""

    kind: str  # "syntax" | "vocabulary"
    message: str
    line: int = 0
    column: int = 0


class ControlAuthoringTool:
    """Headless rule-editor: menus, validation, authoring, deployment."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary
        self.compiler = BalCompiler(vocabulary)
        self.repository = RuleRepository(self.compiler)
        self._controls: Dict[str, InternalControl] = {}

    # -- editor support ---------------------------------------------------------

    def vocabulary_menus(self) -> Dict[str, List[str]]:
        """The drop-down menus: concept → rendered navigation phrases."""
        return self.vocabulary.dropdown_entries()

    def validate(self, text: str) -> List[ValidationIssue]:
        """Validate rule text without authoring it; returns issues found."""
        try:
            self.compiler.compile("__validation__", text)
        except BalSyntaxError as exc:
            return [
                ValidationIssue(
                    kind="syntax",
                    message=str(exc),
                    line=exc.line,
                    column=exc.column,
                )
            ]
        except BalCompileError as exc:
            return [ValidationIssue(kind="vocabulary", message=str(exc))]
        return []

    # -- authoring ------------------------------------------------------------------

    def author(
        self,
        name: str,
        text: str,
        description: str = "",
        severity: ControlSeverity = ControlSeverity.MEDIUM,
        owner: str = "",
        parameter_defaults: Optional[Dict[str, object]] = None,
    ) -> InternalControl:
        """Author (or re-author, creating a new version of) a control."""
        artifact = self.repository.author(name, text)
        control = InternalControl(
            name=name,
            compiled=artifact.compiled,
            description=description,
            severity=severity,
            owner=owner,
            parameter_defaults=dict(parameter_defaults or {}),
        )
        self._controls[name] = control
        return control

    def deploy(self, name: str) -> InternalControl:
        """Deploy the latest authored version of *name*."""
        if name not in self._controls:
            raise ControlError(f"unknown control {name!r}")
        self.repository.deploy(name)
        return self._controls[name]

    def retire(self, name: str) -> None:
        self.repository.retire(name)

    # -- queries -------------------------------------------------------------------------

    def control(self, name: str) -> InternalControl:
        try:
            return self._controls[name]
        except KeyError:
            raise ControlError(f"unknown control {name!r}") from None

    def deployed_controls(self) -> List[InternalControl]:
        """Controls whose repository rule is currently deployed."""
        return [
            self._controls[artifact.name]
            for artifact in self.repository.all_deployed()
            if artifact.name in self._controls
        ]
