"""Evaluating internal controls across execution traces.

The :class:`ComplianceEvaluator` is the on-demand (query-frontend) style of
§II.A: given a store and a set of controls, it builds each trace's graph
and runs every control against it, producing
:class:`~repro.controls.status.ComplianceResult` rows.  The deployed
(real-time) style lives in :mod:`repro.controls.deployment`.

Since the incremental-core refactor, both styles are views over one
engine: a :class:`~repro.controls.materializer.VerdictMaterializer` keeps
a materialized (control, trace) verdict table current under store appends,
and the evaluator's public entry points read it —

- :meth:`run` (batch sweep) drains the dirty pairs and assembles the
  table in canonical order; a sweep after one append re-evaluates one
  trace, not the store,
- :meth:`check_trace` (on-demand) is a targeted refresh of one pair,
- deployed controls subscribe to the same table's transition deltas.

Underneath, three sweep-speed mechanisms stack:

- **shared evaluation contexts** — each trace's graph and XOM wrapping are
  built once (a :class:`~repro.brms.bal.evaluate.TraceFrame`), cached, and
  invalidated per trace when the store appends records to that trace,
- **compiled rule execution** — the engine defaults to the closure-codegen
  back end (``execution_mode="compiled"``),
- **parallel sweeps** — ``run(controls, jobs=N)`` forks workers over the
  *dirty* trace partition only; byte-identical to the serial sweep, and
  falling back to serial (with a warning) where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.brms.bal.evaluate import TraceFrame
from repro.brms.engine import RuleEngine
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.control import InternalControl
from repro.controls.materializer import VerdictMaterializer
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.graph.build import build_trace_graph, graph_from_records
from repro.graph.graph import ProvenanceGraph
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore

# State a parallel sweep shares with forked workers.  Set immediately
# before forking, inherited by the children via copy-on-write (nothing is
# pickled, so closures, SQLite-decoded records and virtual BOM getters all
# travel for free), cleared right after.
_FORK_STATE: Optional[Tuple] = None


def _check_with_frame(
    engine: RuleEngine,
    control: InternalControl,
    frame: TraceFrame,
    parameters: Optional[Dict[str, object]],
    observable_types: Optional[Set[str]],
) -> ComplianceResult:
    """One (control, trace) check against a prebuilt frame.

    The single code path every evaluation mode funnels through — serial,
    memoized, and forked checks produce rows from exactly this function,
    which is what makes their outputs byte-identical.
    """
    outcome = engine.evaluate(
        control.compiled,
        frame.graph,
        parameters=control.resolve_parameters(parameters),
        observable_types=observable_types,
        frame=frame,
    )
    result = ComplianceResult.from_outcome(outcome)
    result.control_name = control.name
    result.checked_at = frame.checked_at
    return result


def _sweep_partition(trace_ids: List[str]) -> List[ComplianceResult]:
    """Worker body: evaluate every control against a trace-id partition."""
    engine, controls, grouped, observable_types = _FORK_STATE
    results: List[ComplianceResult] = []
    for trace_id in trace_ids:
        frame = TraceFrame(
            graph_from_records(grouped.get(trace_id, ()), name=trace_id)
        )
        for control in controls:
            results.append(
                _check_with_frame(
                    engine, control, frame, None, observable_types
                )
            )
    return results


class ComplianceEvaluator:
    """Runs controls over trace graphs built from a provenance store.

    Args:
        execution_mode: rule execution back end, ``"compiled"`` (default)
            or ``"interpret"`` — see :class:`~repro.brms.engine.RuleEngine`.
        share_contexts: cache per-trace evaluation frames (graph + XOM
            wraps) across checks, invalidating per trace on store appends.
            Disable to reproduce rebuild-every-check behaviour (the
            execution-modes benchmark's baseline).
        incremental: maintain the materialized verdict table
            (:attr:`materializer`), memoizing (control, trace) verdicts
            while their traces are clean.  Requires ``share_contexts``;
            disable to force every ``run``/``check_trace`` to re-evaluate.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        observable_types: Optional[Set[str]] = None,
        execution_mode: str = "compiled",
        share_contexts: bool = True,
        incremental: bool = True,
    ) -> None:
        self.store = store
        self.engine = RuleEngine(
            xom, vocabulary, execution_mode=execution_mode
        )
        self.observable_types = observable_types
        self.share_contexts = share_contexts
        self._frames: Dict[str, TraceFrame] = {}
        self.graph_builds = 0  # trace graphs constructed (regression metric)
        if share_contexts:
            # Frame invalidation must run before the materializer's dirty
            # marking (observers fire in subscription order), so a refresh
            # triggered by the same append sees a fresh frame.
            store.subscribe(self._on_store_append)
        self.materializer: Optional[VerdictMaterializer] = (
            VerdictMaterializer(self) if share_contexts and incremental
            else None
        )

    # -- context cache -------------------------------------------------------

    def _on_store_append(self, record: ProvenanceRecord) -> None:
        # The trace gained a record; its cached frame is stale.
        self._frames.pop(record.app_id, None)

    def clear_context_cache(self) -> None:
        """Drop every cached per-trace frame and dirty the verdict table,
        forcing the next sweep to rebuild and re-evaluate everything."""
        self._frames.clear()
        if self.materializer is not None:
            self.materializer.invalidate_all()

    def _frame_for(self, trace_id: str) -> TraceFrame:
        """The trace's shared frame, built (and cached) on first use."""
        if self.share_contexts:
            frame = self._frames.get(trace_id)
            if frame is not None:
                return frame
        self.graph_builds += 1
        frame = TraceFrame(build_trace_graph(self.store, trace_id))
        if self.share_contexts:
            self._frames[trace_id] = frame
        return frame

    def _adopt_frame(self, trace_id: str, graph: ProvenanceGraph) -> TraceFrame:
        """Cache a frame around a graph the sweep already built."""
        frame = TraceFrame(graph)
        if self.share_contexts:
            self._frames[trace_id] = frame
        return frame

    def prime_frames(self, trace_ids: Sequence[str]) -> None:
        """Build the missing frames among *trace_ids* from one store scan.

        The sweep-friendly path: materializing many traces costs one
        sequential backend pass instead of one indexed point-lookup chain
        per trace.  A single missing frame keeps the per-trace query path
        (O(trace) on an indexed store), and so does an unindexed store:
        with the E8 ablation knob off, every evaluation is *supposed* to
        pay a table scan.
        """
        if not self.share_contexts or not self.store.indexed:
            return
        missing = [t for t in trace_ids if t not in self._frames]
        if len(missing) < 2:
            return
        grouped = self.store.records_by_trace()
        for trace_id in missing:
            self.graph_builds += 1
            self._adopt_frame(
                trace_id,
                graph_from_records(grouped.get(trace_id, ()), name=trace_id),
            )

    # -- raw evaluation ------------------------------------------------------

    def evaluate_pair(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
    ) -> ComplianceResult:
        """Evaluate one (control, trace) pair, no verdict memoization.

        This is the materializer's refresh primitive; everything above it
        (sweeps, targeted checks, deployed re-checks) is policy about
        *when* to call it.
        """
        frame = self._frame_for(trace_id)
        return _check_with_frame(
            self.engine, control, frame, parameters, self.observable_types
        )

    # -- single control -----------------------------------------------------

    def check_trace(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
        graph: Optional[ProvenanceGraph] = None,
        as_of: Optional[int] = None,
    ) -> ComplianceResult:
        """Check one control against one trace.

        Plain checks are targeted refreshes of the materialized table:
        the pair re-evaluates only if its trace changed since the last
        check (or was never checked), which on an unchanged trace returns
        the identical verdict a fresh evaluation would produce.

        Args:
            as_of: evaluate against the trace *as it looked* at this
                simulated time (records with later timestamps are invisible)
                — the audit question "was this trace compliant on date X?".
                Historical graphs bypass the context cache and the verdict
                table.
        """
        if as_of is not None:
            self.graph_builds += 1
            frame = TraceFrame(
                build_trace_graph(self.store, trace_id, as_of=as_of)
            )
        elif graph is not None:
            frame = TraceFrame(graph)
        elif self.materializer is not None and parameters is None:
            return self.materializer.check(control, trace_id)
        else:
            return self.evaluate_pair(control, trace_id, parameters)
        return _check_with_frame(
            self.engine, control, frame, parameters, self.observable_types
        )

    def check_all_traces(
        self,
        control: InternalControl,
        trace_ids: Optional[Iterable[str]] = None,
        parameters: Optional[Dict[str, object]] = None,
    ) -> List[ComplianceResult]:
        """Check one control against every trace in the store."""
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        return [self.check_trace(control, trace_id, parameters)
                for trace_id in ids]

    # -- control sets ----------------------------------------------------------

    def run(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Optional[Iterable[str]] = None,
        jobs: Optional[int] = None,
    ) -> List[ComplianceResult]:
        """Check every control against every trace; rows in (trace,
        control) order.

        Incremental by default: the sweep drains the materialized table's
        dirty pairs — traces appended to since the last sweep, plus any
        controls never swept — and reads everything else from the table,
        byte-identical to a cold full sweep.  A cold sweep materializes
        all its frames from one sequential backend scan.

        Args:
            jobs: >1 partitions the *dirty* trace set across that many
                forked worker processes (full sweeps only; falls back to
                serial, with a warning, where the ``fork`` start method is
                unavailable).  Rows come back in the same order as the
                serial sweep.
        """
        if self.materializer is not None:
            return self.materializer.sweep(
                controls, trace_ids=trace_ids, jobs=jobs
            )
        results: List[ComplianceResult] = []
        if jobs is not None and jobs > 1 and trace_ids is None:
            parallel = self.evaluate_forked(
                controls, self.store.app_ids(), jobs
            )
            if parallel is not None:
                return parallel
        if trace_ids is None and self.store.indexed:
            grouped = None
            for trace_id in self.store.app_ids():
                frame = self._frames.get(trace_id) if self.share_contexts \
                    else None
                if frame is None:
                    if grouped is None:
                        grouped = self.store.records_by_trace()
                    self.graph_builds += 1
                    frame = self._adopt_frame(
                        trace_id,
                        graph_from_records(
                            grouped.get(trace_id, ()), name=trace_id
                        ),
                    )
                for control in controls:
                    results.append(
                        _check_with_frame(
                            self.engine, control, frame, None,
                            self.observable_types,
                        )
                    )
            return results
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        for trace_id in ids:
            frame = self._frame_for(trace_id)
            for control in controls:
                results.append(
                    _check_with_frame(
                        self.engine, control, frame, None,
                        self.observable_types,
                    )
                )
        return results

    def evaluate_forked(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Sequence[str],
        jobs: int,
    ) -> Optional[List[ComplianceResult]]:
        """Evaluate every control over *trace_ids* across forked workers.

        Returns None — telling the caller to evaluate serially — when
        forking cannot help (fewer than two traces) or cannot run
        (platforms without the ``fork`` start method get a warning; the
        sweep still completes serially).

        The parent snapshots the requested traces' records *before*
        forking, so workers never touch the storage backend (no SQLite
        connection crosses the fork) — they only read inherited memory.
        """
        global _FORK_STATE
        if len(trace_ids) < 2:
            return None
        if not hasattr(os, "fork"):
            warnings.warn(
                "parallel sweep requested (jobs>1) but os.fork is "
                "unavailable on this platform; evaluating serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # spawn-only platform
            warnings.warn(
                "parallel sweep requested (jobs>1) but the 'fork' "
                "multiprocessing start method is unavailable; evaluating "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        jobs = min(jobs, len(trace_ids))
        grouped_all = self.store.records_by_trace()
        grouped = {t: grouped_all.get(t, []) for t in trace_ids}
        # Contiguous partitions keep concatenated results in serial order.
        total = len(trace_ids)
        bounds = [
            (total * i // jobs, total * (i + 1) // jobs)
            for i in range(jobs)
        ]
        chunks = [list(trace_ids[lo:hi]) for lo, hi in bounds if lo < hi]
        _FORK_STATE = (
            self.engine, tuple(controls), grouped, self.observable_types
        )
        try:
            with context.Pool(processes=len(chunks)) as pool:
                parts = pool.map(_sweep_partition, chunks)
        finally:
            _FORK_STATE = None
        return [result for part in parts for result in part]

    # -- reporting ------------------------------------------------------------------

    @staticmethod
    def violations(
        results: Iterable[ComplianceResult],
    ) -> List[ComplianceResult]:
        """The exception report: only violated results."""
        return [
            result
            for result in results
            if result.status is ComplianceStatus.VIOLATED
        ]

    @staticmethod
    def summary(
        results: Iterable[ComplianceResult],
    ) -> Dict[str, Dict[str, int]]:
        """Per-control counts by status."""
        table: Dict[str, Dict[str, int]] = {}
        for result in results:
            row = table.setdefault(
                result.control_name,
                {status.value: 0 for status in ComplianceStatus},
            )
            row[result.status.value] += 1
        return table
