"""Evaluating internal controls across execution traces.

The :class:`ComplianceEvaluator` is the on-demand (query-frontend) style of
§II.A: given a store and a set of controls, it builds each trace's graph
and runs every control against it, producing
:class:`~repro.controls.status.ComplianceResult` rows.  The deployed
(real-time) style lives in :mod:`repro.controls.deployment`.

Since the incremental-core refactor, both styles are views over one
engine: a :class:`~repro.controls.materializer.VerdictMaterializer` keeps
a materialized (control, trace) verdict table current under store appends,
and the evaluator's public entry points read it —

- :meth:`run` (batch sweep) drains the dirty pairs and assembles the
  table in canonical order; a sweep after one append re-evaluates one
  trace, not the store,
- :meth:`check_trace` (on-demand) is a targeted refresh of one pair,
- deployed controls subscribe to the same table's transition deltas.

Underneath, three sweep-speed mechanisms stack:

- **shared evaluation contexts** — each trace's graph and XOM wrapping are
  built once (a :class:`~repro.brms.bal.evaluate.TraceFrame`), cached, and
  invalidated per trace when the store appends records to that trace,
- **compiled rule execution** — the engine defaults to the closure-codegen
  back end (``execution_mode="compiled"``),
- **parallel sweeps** — ``run(controls, jobs=N)`` spreads the *dirty*
  trace partition over a persistent forked worker pool, byte-identical to
  the serial sweep.  The pool forks once and is fed per-sweep record
  deltas; a measured break-even test keeps small sweeps serial (so
  ``jobs=N`` is never slower than ``jobs=1``), and platforms without
  ``fork`` fall back to serial with a warning.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
import weakref
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.brms.bal.evaluate import TraceFrame
from repro.brms.bom import MemberKind
from repro.brms.engine import RuleEngine
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.control import InternalControl
from repro.controls.materializer import VerdictMaterializer
from repro.faults.points import crash_point
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.graph.build import build_trace_graph, graph_from_records
from repro.graph.graph import ProvenanceGraph
from repro.model.records import ProvenanceRecord
from repro.store.cursor import cursor_distance
from repro.store.store import ProvenanceStore

# State a sweep pool shares with its forked workers.  Set immediately
# before forking, inherited by the children via copy-on-write (nothing is
# pickled, so closures, SQLite-decoded records and virtual BOM getters all
# travel for free), cleared right after the fork.
_POOL_STATE: Optional[Tuple] = None

# Cost-model priors, replaced by measurements as soon as a pool exists:
# creating a pool (fork + snapshot + prime) and dispatching one task batch.
_STARTUP_PRIOR = 0.08
_DISPATCH_PRIOR = 0.004
#: last measured pool startup / dispatch round-trip on this machine.
_measured_startup: Optional[float] = None
_measured_dispatch: Optional[float] = None

#: a parallel sweep must be predicted to save at least this multiple of its
#: fixed overhead before it forks/dispatches — below the threshold the
#: sweep silently runs serially, which is what keeps ``jobs=N`` from ever
#: losing to ``jobs=1``.
_BREAKEVEN_MARGIN = 2.0
#: a persistent pool serves many sweeps; its startup cost is charged to the
#: break-even test amortized over this many expected sweeps.
_STARTUP_AMORTIZATION = 4
#: re-fork the pool (fresh snapshot) once the shipped delta outgrows this
#: fraction of the inherited snapshot.
_REBASE_FRACTION = 0.2


def _check_with_frame(
    engine: RuleEngine,
    control: InternalControl,
    frame: TraceFrame,
    parameters: Optional[Dict[str, object]],
    observable_types: Optional[Set[str]],
) -> ComplianceResult:
    """One (control, trace) check against a prebuilt frame.

    The single code path every evaluation mode funnels through — serial,
    memoized, and forked checks produce rows from exactly this function,
    which is what makes their outputs byte-identical.
    """
    outcome = engine.evaluate(
        control.compiled,
        frame.graph,
        parameters=control.resolve_parameters(parameters),
        observable_types=observable_types,
        frame=frame,
    )
    result = ComplianceResult.from_outcome(outcome)
    result.control_name = control.name
    result.checked_at = frame.checked_at
    return result


def _pool_noop(_arg) -> None:
    """Warm-up task: measures the pool's dispatch round-trip."""
    return None


def referenced_attributes(
    control: InternalControl, vocabulary: Vocabulary
) -> Optional[FrozenSet[str]]:
    """Record attributes *control*'s BAL rule can read, or ``None``.

    Rules touch record attributes only through navigation phrases that
    resolve to ATTRIBUTE members of the BOM, so the union of those
    members' attributes over the rule's phrases bounds the read set —
    which is what lets a sweep materialize projected records.  ``None``
    means the set cannot be bounded: a phrase that resolves to a VIRTUAL
    member (its Python getter may read anything) or resolves nowhere.
    RELATION members traverse graph edges, never attribute values.
    """
    needed: Set[str] = set()
    for phrase in control.compiled.phrases:
        resolved = False
        for bom_class in vocabulary.bom.classes():
            member = bom_class.member_by_phrase(phrase)
            if member is None:
                continue
            resolved = True
            if member.kind is MemberKind.VIRTUAL:
                return None
            if member.kind is MemberKind.ATTRIBUTE:
                needed.add(member.attribute)
        if not resolved:
            return None
    return frozenset(needed)


def _sweep_task(payload) -> List[ComplianceResult]:
    """Worker body: evaluate every control against a trace-id partition.

    *payload* is ``(trace_ids, delta)`` where *delta* maps trace id → the
    records appended after the worker's inherited snapshot was taken; the
    parent ships exactly those (they are plain frozen dataclasses, cheap to
    pickle), so a long-lived pool evaluates current data without re-forking.
    """
    trace_ids, delta = payload
    engine, controls, grouped, observable_types = _POOL_STATE
    results: List[ComplianceResult] = []
    for trace_id in trace_ids:
        records = grouped.get(trace_id, ())
        extra = delta.get(trace_id)
        if extra:
            records = list(records) + extra
        frame = TraceFrame(graph_from_records(records, name=trace_id))
        for control in controls:
            results.append(
                _check_with_frame(
                    engine, control, frame, None, observable_types
                )
            )
    return results


class _SweepPool:
    """A persistent fork pool bound to one evaluator's engine + controls.

    Workers inherit the engine, the controls, and a full store snapshot at
    fork time; each sweep ships only the per-trace record delta appended
    since.  The pool survives across sweeps (fork-per-sweep is what made
    ``jobs=N`` slower than serial) and is disposed when the control set
    changes, the delta outgrows the snapshot, or the evaluator goes away.
    """

    def __init__(
        self,
        context,
        evaluator: "ComplianceEvaluator",
        controls: Sequence[InternalControl],
        jobs: int,
    ) -> None:
        global _POOL_STATE, _measured_startup, _measured_dispatch
        self.jobs = jobs
        self.controls_key = tuple(id(control) for control in controls)
        self.base_seq = evaluator.store.last_seq()
        # Death here leaves no pool behind — the crash model checker uses
        # this point to assert a sweep killed at worker startup cannot
        # corrupt the verdict table.
        crash_point("evaluator.pool.worker_start")
        started = time.perf_counter()
        # Workers only run these controls, so their inherited snapshot can
        # be projected down to the columns the controls actually read.
        grouped, __ = evaluator._grouped_records(
            evaluator._projection_for(controls)
        )
        self.trace_sizes = {t: len(v) for t, v in grouped.items()}
        self.snapshot_size = sum(self.trace_sizes.values())
        _POOL_STATE = (
            evaluator.engine,
            tuple(controls),
            grouped,
            evaluator.observable_types,
        )
        try:
            self.pool = context.Pool(processes=jobs)
        finally:
            _POOL_STATE = None
        self.pool.map(_pool_noop, range(jobs))
        self.startup_cost = time.perf_counter() - started
        dispatched = time.perf_counter()
        self.pool.map(_pool_noop, range(jobs))
        self.dispatch_cost = time.perf_counter() - dispatched
        _measured_startup = self.startup_cost
        _measured_dispatch = self.dispatch_cost
        self._disposed = False

    def map(self, payloads) -> List[List[ComplianceResult]]:
        return self.pool.map(_sweep_task, payloads)

    def dispose(self) -> None:
        """Terminate the workers.  Idempotent."""
        if self._disposed:
            return
        self._disposed = True
        self.pool.terminate()
        self.pool.join()


class ComplianceEvaluator:
    """Runs controls over trace graphs built from a provenance store.

    Args:
        execution_mode: rule execution back end, ``"compiled"`` (default)
            or ``"interpret"`` — see :class:`~repro.brms.engine.RuleEngine`.
        share_contexts: cache per-trace evaluation frames (graph + XOM
            wraps) across checks, invalidating per trace on store appends.
            Disable to reproduce rebuild-every-check behaviour (the
            execution-modes benchmark's baseline).
        incremental: maintain the materialized verdict table
            (:attr:`materializer`), memoizing (control, trace) verdicts
            while their traces are clean.  Requires ``share_contexts``;
            disable to force every ``run``/``check_trace`` to re-evaluate.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        observable_types: Optional[Set[str]] = None,
        execution_mode: str = "compiled",
        share_contexts: bool = True,
        incremental: bool = True,
    ) -> None:
        self.store = store
        self.engine = RuleEngine(
            xom, vocabulary, execution_mode=execution_mode
        )
        self.observable_types = observable_types
        self.share_contexts = share_contexts
        self._frames: Dict[str, TraceFrame] = {}
        #: trace id → the attribute projection its cached frame was built
        #: under.  Absent means the frame holds full records and serves
        #: any control; a projected frame only serves controls whose read
        #: set it covers (wider needs rebuild the frame).
        self._frame_projection: Dict[str, FrozenSet[str]] = {}
        #: id(control) → (control, its referenced-attribute set); the
        #: control is kept in the value so the id can never be recycled
        #: while the entry lives.
        self._control_projections: Dict[
            int, Tuple[InternalControl, Optional[FrozenSet[str]]]
        ] = {}
        #: lazy-projection policy: ``"auto"`` materializes only the
        #: columns a sweep's controls reference when the backend can
        #: project; ``"never"`` forces full records (oracle baseline).
        self.projection_mode = "auto"
        #: sweeps whose frames were built from projected records.
        self.projected_sweeps = 0
        self.graph_builds = 0  # trace graphs constructed (regression metric)
        #: parallel-sweep policy: ``"auto"`` engages the worker pool only
        #: when the measured break-even test predicts a win; ``"always"`` /
        #: ``"never"`` force the decision (tests and benchmarks).
        self.parallel_mode = "auto"
        #: sweeps where jobs>1 was requested but the break-even test (or a
        #: pool failure) kept evaluation serial.
        self.parallel_fallbacks = 0
        #: parallel sweeps actually dispatched to the pool.
        self.parallel_sweeps = 0
        self._sweep_pool: Optional[_SweepPool] = None
        self._pair_cost: Optional[float] = None  # EMA, seconds per pair
        if share_contexts:
            # Frame invalidation must run before the materializer's dirty
            # marking (observers fire in subscription order), so a refresh
            # triggered by the same append sees a fresh frame.
            store.subscribe(self._on_store_append)
        self.materializer: Optional[VerdictMaterializer] = (
            VerdictMaterializer(self) if share_contexts and incremental
            else None
        )

    # -- context cache -------------------------------------------------------

    def _on_store_append(self, record: ProvenanceRecord) -> None:
        # The trace gained a record; its cached frame is stale.
        self._frames.pop(record.app_id, None)
        self._frame_projection.pop(record.app_id, None)

    def clear_context_cache(self) -> None:
        """Drop every cached per-trace frame and dirty the verdict table,
        forcing the next sweep to rebuild and re-evaluate everything."""
        self._frames.clear()
        self._frame_projection.clear()
        if self.materializer is not None:
            self.materializer.invalidate_all()

    def _projection_for(
        self, controls: Sequence[InternalControl]
    ) -> Optional[FrozenSet[str]]:
        """Union of the controls' attribute read sets; None = unbounded."""
        if self.projection_mode == "never":
            return None
        needed: Set[str] = set()
        for control in controls:
            key = id(control)
            cached = self._control_projections.get(key)
            if cached is None or cached[0] is not control:
                cached = (
                    control,
                    referenced_attributes(control, self.engine.vocabulary),
                )
                self._control_projections[key] = cached
            if cached[1] is None:
                return None
            needed |= cached[1]
        return frozenset(needed)

    def _cached_frame(
        self, trace_id: str, needed: Optional[FrozenSet[str]]
    ) -> Optional[TraceFrame]:
        """The cached frame, when it can serve a read set of *needed*.

        A full frame serves anything; a projected frame only serves
        bounded read sets it covers.  A cached frame too narrow for
        *needed* is evicted (the rebuild will widen it).
        """
        frame = self._frames.get(trace_id)
        if frame is None:
            return None
        built_under = self._frame_projection.get(trace_id)
        if built_under is None:
            return frame
        if needed is not None and built_under >= needed:
            return frame
        self._frames.pop(trace_id, None)
        self._frame_projection.pop(trace_id, None)
        return None

    def _frame_for(
        self,
        trace_id: str,
        needed: Optional[FrozenSet[str]] = None,
    ) -> TraceFrame:
        """The trace's shared frame, built (and cached) on first use.

        *needed* is the caller's attribute read set, used only to decide
        whether a cached *projected* frame suffices; a frame built here
        always holds full records.
        """
        if self.share_contexts:
            frame = self._cached_frame(trace_id, needed)
            if frame is not None:
                return frame
        self.graph_builds += 1
        frame = TraceFrame(build_trace_graph(self.store, trace_id))
        if self.share_contexts:
            self._frames[trace_id] = frame
            self._frame_projection.pop(trace_id, None)
        return frame

    def _adopt_frame(
        self,
        trace_id: str,
        graph: ProvenanceGraph,
        projection: Optional[FrozenSet[str]] = None,
    ) -> TraceFrame:
        """Cache a frame around a graph the sweep already built.

        *projection* must be the attribute set the graph's records were
        actually materialized under — None for full records.
        """
        frame = TraceFrame(graph)
        if self.share_contexts:
            self._frames[trace_id] = frame
            if projection is None:
                self._frame_projection.pop(trace_id, None)
            else:
                self._frame_projection[trace_id] = projection
        return frame

    def _grouped_records(
        self, projection: Optional[FrozenSet[str]]
    ) -> Tuple[Dict[str, List[ProvenanceRecord]], Optional[FrozenSet[str]]]:
        """One-scan trace grouping, projected when the backend can.

        Returns ``(grouped, applied)`` where *applied* is the projection
        the records were actually materialized under (None = full).
        """
        if projection is not None:
            grouped = self.store.records_by_trace_projected(projection)
            if grouped is not None:
                self.projected_sweeps += 1
                return grouped, projection
        return self.store.records_by_trace(), None

    def prime_frames(
        self,
        trace_ids: Sequence[str],
        controls: Optional[Sequence[InternalControl]] = None,
    ) -> None:
        """Build the missing frames among *trace_ids* from one store scan.

        The sweep-friendly path: materializing many traces costs one
        sequential backend pass instead of one indexed point-lookup chain
        per trace.  A single missing frame keeps the per-trace query path
        (O(trace) on an indexed store), and so does an unindexed store:
        with the E8 ablation knob off, every evaluation is *supposed* to
        pay a table scan.

        When *controls* is given and their attribute read set is bounded,
        the scan materializes only the referenced columns (on backends
        with a projection fast path); the cached frames remember their
        projection and rebuild if a wider read set ever shows up.
        """
        if not self.share_contexts or not self.store.indexed:
            return
        projection = (
            self._projection_for(controls) if controls is not None else None
        )
        missing = [
            t
            for t in trace_ids
            if self._cached_frame(t, projection) is None
        ]
        if len(missing) < 2:
            return
        grouped, applied = self._grouped_records(projection)
        for trace_id in missing:
            self.graph_builds += 1
            self._adopt_frame(
                trace_id,
                graph_from_records(grouped.get(trace_id, ()), name=trace_id),
                projection=applied,
            )

    # -- raw evaluation ------------------------------------------------------

    def evaluate_pair(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
    ) -> ComplianceResult:
        """Evaluate one (control, trace) pair, no verdict memoization.

        This is the materializer's refresh primitive; everything above it
        (sweeps, targeted checks, deployed re-checks) is policy about
        *when* to call it.
        """
        frame = self._frame_for(
            trace_id, needed=self._projection_for((control,))
        )
        started = time.perf_counter()
        result = _check_with_frame(
            self.engine, control, frame, parameters, self.observable_types
        )
        self._note_pair_cost(time.perf_counter() - started, 1)
        return result

    def _note_pair_cost(self, seconds: float, pairs: int) -> None:
        """Fold a serial evaluation measurement into the per-pair EMA."""
        if pairs <= 0:
            return
        sample = seconds / pairs
        if self._pair_cost is None:
            self._pair_cost = sample
        else:
            self._pair_cost = 0.5 * self._pair_cost + 0.5 * sample

    # -- single control -----------------------------------------------------

    def check_trace(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
        graph: Optional[ProvenanceGraph] = None,
        as_of: Optional[int] = None,
    ) -> ComplianceResult:
        """Check one control against one trace.

        Plain checks are targeted refreshes of the materialized table:
        the pair re-evaluates only if its trace changed since the last
        check (or was never checked), which on an unchanged trace returns
        the identical verdict a fresh evaluation would produce.

        Args:
            as_of: evaluate against the trace *as it looked* at this
                simulated time (records with later timestamps are invisible)
                — the audit question "was this trace compliant on date X?".
                Historical graphs bypass the context cache and the verdict
                table.
        """
        if as_of is not None:
            self.graph_builds += 1
            frame = TraceFrame(
                build_trace_graph(self.store, trace_id, as_of=as_of)
            )
        elif graph is not None:
            frame = TraceFrame(graph)
        elif self.materializer is not None and parameters is None:
            return self.materializer.check(control, trace_id)
        else:
            return self.evaluate_pair(control, trace_id, parameters)
        return _check_with_frame(
            self.engine, control, frame, parameters, self.observable_types
        )

    def check_all_traces(
        self,
        control: InternalControl,
        trace_ids: Optional[Iterable[str]] = None,
        parameters: Optional[Dict[str, object]] = None,
    ) -> List[ComplianceResult]:
        """Check one control against every trace in the store."""
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        return [self.check_trace(control, trace_id, parameters)
                for trace_id in ids]

    # -- control sets ----------------------------------------------------------

    def run(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Optional[Iterable[str]] = None,
        jobs: Optional[int] = None,
    ) -> List[ComplianceResult]:
        """Check every control against every trace; rows in (trace,
        control) order.

        Incremental by default: the sweep drains the materialized table's
        dirty pairs — traces appended to since the last sweep, plus any
        controls never swept — and reads everything else from the table,
        byte-identical to a cold full sweep.  A cold sweep materializes
        all its frames from one sequential backend scan.

        Args:
            jobs: >1 partitions the *dirty* trace set across that many
                forked worker processes (full sweeps only; falls back to
                serial, with a warning, where the ``fork`` start method is
                unavailable).  Rows come back in the same order as the
                serial sweep.
        """
        if self.materializer is not None:
            return self.materializer.sweep(
                controls, trace_ids=trace_ids, jobs=jobs
            )
        results: List[ComplianceResult] = []
        if jobs is not None and jobs > 1 and trace_ids is None:
            parallel = self.evaluate_forked(
                controls, self.store.app_ids(), jobs
            )
            if parallel is not None:
                return parallel
        started = time.perf_counter()
        if trace_ids is None and self.store.indexed:
            projection = self._projection_for(controls)
            grouped = None
            applied: Optional[FrozenSet[str]] = None
            for trace_id in self.store.app_ids():
                frame = (
                    self._cached_frame(trace_id, projection)
                    if self.share_contexts
                    else None
                )
                if frame is None:
                    if grouped is None:
                        grouped, applied = self._grouped_records(projection)
                    self.graph_builds += 1
                    frame = self._adopt_frame(
                        trace_id,
                        graph_from_records(
                            grouped.get(trace_id, ()), name=trace_id
                        ),
                        projection=applied,
                    )
                for control in controls:
                    results.append(
                        _check_with_frame(
                            self.engine, control, frame, None,
                            self.observable_types,
                        )
                    )
        else:
            ids = (
                list(trace_ids) if trace_ids is not None
                else self.store.app_ids()
            )
            for trace_id in ids:
                frame = self._frame_for(trace_id)
                for control in controls:
                    results.append(
                        _check_with_frame(
                            self.engine, control, frame, None,
                            self.observable_types,
                        )
                    )
        # The serial sweep is the break-even measurement for the next one.
        self._note_pair_cost(time.perf_counter() - started, len(results))
        return results

    def shutdown_pool(self) -> None:
        """Terminate the persistent sweep pool, if one is running."""
        if self._sweep_pool is not None:
            crash_point("evaluator.pool.worker_teardown")
            self._sweep_pool.dispose()
            self._sweep_pool = None

    def _parallel_worthwhile(
        self,
        controls: Sequence[InternalControl],
        pairs: int,
        jobs: int,
    ) -> bool:
        """The measured break-even test for one sweep.

        Predicts the serial cost from the per-pair EMA and compares the
        parallel saving against the fixed overhead (pool startup amortized
        over its expected lifetime, plus the measured dispatch round-trip).
        With no measurement yet the sweep stays serial — that first serial
        sweep *is* the measurement.
        """
        if self.parallel_mode == "always":
            return True
        if self.parallel_mode == "never" or jobs < 2:
            return False
        if self._pair_cost is None:
            return False
        serial_estimate = pairs * self._pair_cost
        pool = self._sweep_pool
        reusable = (
            pool is not None
            and pool.controls_key == tuple(id(c) for c in controls)
            and jobs <= pool.jobs
        )
        if reusable:
            overhead = pool.dispatch_cost
        else:
            startup = _measured_startup or _STARTUP_PRIOR
            dispatch = _measured_dispatch or _DISPATCH_PRIOR
            overhead = startup / _STARTUP_AMORTIZATION + dispatch
        savings = serial_estimate * (1.0 - 1.0 / jobs)
        return savings > _BREAKEVEN_MARGIN * overhead

    def _ensure_pool(
        self, context, controls: Sequence[InternalControl], jobs: int
    ) -> _SweepPool:
        """The persistent pool for (engine, controls), re-forked when the
        control set changed, more workers are wanted, or the shipped delta
        outgrew the inherited snapshot."""
        pool = self._sweep_pool
        controls_key = tuple(id(control) for control in controls)
        if pool is not None:
            delta_size = cursor_distance(
                self.store.last_seq(), pool.base_seq
            )
            stale = (
                pool.controls_key != controls_key
                or jobs > pool.jobs
                or delta_size
                > max(1000, _REBASE_FRACTION * pool.snapshot_size)
            )
            if stale:
                pool.dispose()
                pool = None
        if pool is None:
            pool = _SweepPool(context, self, controls, jobs)
            self._sweep_pool = pool
            # The workers die with the evaluator even when nobody calls
            # shutdown_pool (each pool gets its own finalizer).
            weakref.finalize(self, pool.dispose)
        return pool

    def evaluate_forked(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Sequence[str],
        jobs: int,
    ) -> Optional[List[ComplianceResult]]:
        """Evaluate every control over *trace_ids* across pooled workers.

        Returns None — telling the caller to evaluate serially — when
        forking cannot help (fewer than two traces, or the break-even test
        predicts the serial sweep wins) or cannot run (platforms without
        the ``fork`` start method get a warning; the sweep still completes
        serially).

        Workers never touch the storage backend (no SQLite connection
        crosses the fork): they read the snapshot inherited when the
        persistent pool was forked, plus the per-trace delta of records
        appended since, shipped with each task.
        """
        if len(trace_ids) < 2:
            return None
        if not hasattr(os, "fork"):
            warnings.warn(
                "parallel sweep requested (jobs>1) but os.fork is "
                "unavailable on this platform; evaluating serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # spawn-only platform
            warnings.warn(
                "parallel sweep requested (jobs>1) but the 'fork' "
                "multiprocessing start method is unavailable; evaluating "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        jobs = min(jobs, len(trace_ids))
        pairs = len(trace_ids) * len(controls)
        if not self._parallel_worthwhile(controls, pairs, jobs):
            self.parallel_fallbacks += 1
            return None
        sharded = self.store.shard_count() > 1
        try:
            pool = self._ensure_pool(context, controls, jobs)
            delta = self._delta_by_trace(pool.base_seq, set(trace_ids))
            if sharded:
                chunks = self._shard_chunks(trace_ids, pool, delta, jobs)
            else:
                chunks = self._cost_chunks(trace_ids, pool, delta, jobs)
            payloads = [
                (
                    chunk,
                    {t: delta[t] for t in chunk if t in delta},
                )
                for chunk in chunks
            ]
            parts = pool.map(payloads)
        except Exception as exc:  # pool died (OOM, signal): finish serially
            warnings.warn(
                f"parallel sweep failed ({exc!r}); evaluating serially",
                RuntimeWarning,
                stacklevel=2,
            )
            self.shutdown_pool()
            self.parallel_fallbacks += 1
            return None
        self.parallel_sweeps += 1
        results = [result for part in parts for result in part]
        if sharded:
            # Shard assignments are not contiguous in trace order, so
            # reassemble the canonical (trace, control) serial order.
            by_key = {
                (r.trace_id, r.control_name): r for r in results
            }
            results = [
                by_key[(trace_id, control.name)]
                for trace_id in trace_ids
                for control in controls
            ]
        return results

    def _delta_by_trace(
        self, base_seq, wanted: Set[str]
    ) -> Dict[str, List[ProvenanceRecord]]:
        """Records appended after cursor *base_seq*, per wanted trace."""
        delta: Dict[str, List[ProvenanceRecord]] = {}
        for __, record in self.store.changes_since(base_seq):
            if record.app_id in wanted:
                delta.setdefault(record.app_id, []).append(record)
        return delta

    def _cost_chunks(
        self,
        trace_ids: Sequence[str],
        pool: _SweepPool,
        delta: Dict[str, List[ProvenanceRecord]],
        jobs: int,
    ) -> List[List[str]]:
        """Contiguous chunks balanced by estimated per-trace cost.

        Cost ∝ record count (snapshot + delta) — evaluation and frame
        building both scale with trace size.  Contiguity keeps the
        concatenated results in serial sweep order.
        """
        costs = [
            1
            + pool.trace_sizes.get(trace_id, 0)
            + len(delta.get(trace_id, ()))
            for trace_id in trace_ids
        ]
        total = sum(costs)
        target = total / jobs
        chunks: List[List[str]] = []
        current: List[str] = []
        accumulated = 0.0
        for trace_id, cost in zip(trace_ids, costs):
            current.append(trace_id)
            accumulated += cost
            if accumulated >= target and len(chunks) < jobs - 1:
                chunks.append(current)
                current = []
                accumulated = 0.0
        if current:
            chunks.append(current)
        return chunks

    def _shard_chunks(
        self,
        trace_ids: Sequence[str],
        pool: _SweepPool,
        delta: Dict[str, List[ProvenanceRecord]],
        jobs: int,
    ) -> List[List[str]]:
        """Whole-shard work assignments for a sharded store.

        Traces sharing a shard share a partition — the natural unit of
        locality for a scatter-gather sweep — so each worker gets whole
        shards, packed greedily (heaviest shard first onto the lightest
        worker) by the same record-count cost model as
        :meth:`_cost_chunks`.  The caller reassembles canonical order
        afterwards, so chunks need not be contiguous.
        """
        by_shard: Dict[int, List[str]] = {}
        shard_cost: Dict[int, int] = {}
        for trace_id in trace_ids:
            shard = self.store.shard_index(trace_id)
            by_shard.setdefault(shard, []).append(trace_id)
            shard_cost[shard] = (
                shard_cost.get(shard, 0)
                + 1
                + pool.trace_sizes.get(trace_id, 0)
                + len(delta.get(trace_id, ()))
            )
        workers: List[List[str]] = [[] for _ in range(jobs)]
        loads = [0] * jobs
        # Heaviest shard first; ties break on shard index for determinism.
        for shard in sorted(
            by_shard, key=lambda s: (-shard_cost[s], s)
        ):
            lightest = loads.index(min(loads))
            workers[lightest].extend(by_shard[shard])
            loads[lightest] += shard_cost[shard]
        return [chunk for chunk in workers if chunk]

    # -- reporting ------------------------------------------------------------------

    @staticmethod
    def violations(
        results: Iterable[ComplianceResult],
    ) -> List[ComplianceResult]:
        """The exception report: only violated results."""
        return [
            result
            for result in results
            if result.status is ComplianceStatus.VIOLATED
        ]

    @staticmethod
    def summary(
        results: Iterable[ComplianceResult],
    ) -> Dict[str, Dict[str, int]]:
        """Per-control counts by status."""
        table: Dict[str, Dict[str, int]] = {}
        for result in results:
            row = table.setdefault(
                result.control_name,
                {status.value: 0 for status in ComplianceStatus},
            )
            row[result.status.value] += 1
        return table
