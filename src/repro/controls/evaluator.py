"""Evaluating internal controls across execution traces.

The :class:`ComplianceEvaluator` is the on-demand (query-frontend) style of
§II.A: given a store and a set of controls, it builds each trace's graph
and runs every control against it, producing
:class:`~repro.controls.status.ComplianceResult` rows.  The deployed
(real-time) style lives in :mod:`repro.controls.deployment`.

Three sweep-speed mechanisms stack here:

- **shared evaluation contexts** — each trace's graph and XOM wrapping are
  built once per sweep (a :class:`~repro.brms.bal.evaluate.TraceFrame`)
  and shared by every control; frames are cached across calls and
  invalidated per trace when the store appends new records,
- **compiled rule execution** — the engine defaults to the closure-codegen
  back end (``execution_mode="compiled"``),
- **parallel sweeps** — ``run(controls, jobs=N)`` partitions trace ids
  across forked worker processes; safe because a sweep only reads, and
  byte-identical to the serial sweep because partitions preserve trace
  order.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.brms.bal.evaluate import TraceFrame
from repro.brms.engine import RuleEngine
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.control import InternalControl
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.graph.build import build_trace_graph, graph_from_records
from repro.graph.graph import ProvenanceGraph
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore

# State a parallel sweep shares with forked workers.  Set immediately
# before forking, inherited by the children via copy-on-write (nothing is
# pickled, so closures, SQLite-decoded records and virtual BOM getters all
# travel for free), cleared right after.
_FORK_STATE: Optional[Tuple] = None


def _check_with_frame(
    engine: RuleEngine,
    control: InternalControl,
    frame: TraceFrame,
    parameters: Optional[Dict[str, object]],
    observable_types: Optional[Set[str]],
) -> ComplianceResult:
    """One (control, trace) check against a prebuilt frame.

    The single code path every sweep mode funnels through — serial,
    cached, and forked sweeps produce rows from exactly this function,
    which is what makes their outputs byte-identical.
    """
    outcome = engine.evaluate(
        control.compiled,
        frame.graph,
        parameters=control.resolve_parameters(parameters),
        observable_types=observable_types,
        frame=frame,
    )
    result = ComplianceResult.from_outcome(outcome)
    result.control_name = control.name
    result.checked_at = frame.checked_at
    return result


def _sweep_partition(trace_ids: List[str]) -> List[ComplianceResult]:
    """Worker body: evaluate every control against a trace-id partition."""
    engine, controls, grouped, observable_types = _FORK_STATE
    results: List[ComplianceResult] = []
    for trace_id in trace_ids:
        frame = TraceFrame(
            graph_from_records(grouped.get(trace_id, ()), name=trace_id)
        )
        for control in controls:
            results.append(
                _check_with_frame(
                    engine, control, frame, None, observable_types
                )
            )
    return results


class ComplianceEvaluator:
    """Runs controls over trace graphs built from a provenance store.

    Args:
        execution_mode: rule execution back end, ``"compiled"`` (default)
            or ``"interpret"`` — see :class:`~repro.brms.engine.RuleEngine`.
        share_contexts: cache per-trace evaluation frames (graph + XOM
            wraps) across checks, invalidating per trace on store appends.
            Disable to reproduce rebuild-every-check behaviour (the
            execution-modes benchmark's baseline).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        observable_types: Optional[Set[str]] = None,
        execution_mode: str = "compiled",
        share_contexts: bool = True,
    ) -> None:
        self.store = store
        self.engine = RuleEngine(
            xom, vocabulary, execution_mode=execution_mode
        )
        self.observable_types = observable_types
        self.share_contexts = share_contexts
        self._frames: Dict[str, TraceFrame] = {}
        self.graph_builds = 0  # trace graphs constructed (regression metric)
        if share_contexts:
            store.subscribe(self._on_store_append)

    # -- context cache -------------------------------------------------------

    def _on_store_append(self, record: ProvenanceRecord) -> None:
        # The trace gained a record; its cached frame is stale.
        self._frames.pop(record.app_id, None)

    def clear_context_cache(self) -> None:
        """Drop every cached per-trace frame."""
        self._frames.clear()

    def _frame_for(self, trace_id: str) -> TraceFrame:
        """The trace's shared frame, built (and cached) on first use."""
        if self.share_contexts:
            frame = self._frames.get(trace_id)
            if frame is not None:
                return frame
        self.graph_builds += 1
        frame = TraceFrame(build_trace_graph(self.store, trace_id))
        if self.share_contexts:
            self._frames[trace_id] = frame
        return frame

    def _adopt_frame(self, trace_id: str, graph: ProvenanceGraph) -> TraceFrame:
        """Cache a frame around a graph the sweep already built."""
        frame = TraceFrame(graph)
        if self.share_contexts:
            self._frames[trace_id] = frame
        return frame

    # -- single control -----------------------------------------------------

    def check_trace(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
        graph: Optional[ProvenanceGraph] = None,
        as_of: Optional[int] = None,
    ) -> ComplianceResult:
        """Check one control against one trace.

        Args:
            as_of: evaluate against the trace *as it looked* at this
                simulated time (records with later timestamps are invisible)
                — the audit question "was this trace compliant on date X?".
                Historical graphs bypass the context cache.
        """
        if as_of is not None:
            self.graph_builds += 1
            frame = TraceFrame(
                build_trace_graph(self.store, trace_id, as_of=as_of)
            )
        elif graph is not None:
            frame = TraceFrame(graph)
        else:
            frame = self._frame_for(trace_id)
        return _check_with_frame(
            self.engine, control, frame, parameters, self.observable_types
        )

    def check_all_traces(
        self,
        control: InternalControl,
        trace_ids: Optional[Iterable[str]] = None,
        parameters: Optional[Dict[str, object]] = None,
    ) -> List[ComplianceResult]:
        """Check one control against every trace in the store."""
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        return [self.check_trace(control, trace_id, parameters)
                for trace_id in ids]

    # -- control sets ----------------------------------------------------------

    def run(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Optional[Iterable[str]] = None,
        jobs: Optional[int] = None,
    ) -> List[ComplianceResult]:
        """Check every control against every trace (graphs built once).

        A full sweep groups one sequential storage-backend scan by trace
        instead of issuing one store query per trace — on lazy backends
        (SQLite) that is one pass over the table rather than thousands of
        point lookups.  Restricting to *trace_ids* keeps the per-trace
        query path, and so does an unindexed store: with the E8 ablation
        knob off, every evaluation is *supposed* to pay a table scan.

        Args:
            jobs: >1 partitions the sweep's trace ids across that many
                forked worker processes (full sweeps only; requires the
                ``fork`` start method, silently serial elsewhere).  Rows
                come back in the same order as the serial sweep.
        """
        if jobs is not None and jobs > 1 and trace_ids is None:
            parallel = self._run_forked(controls, jobs)
            if parallel is not None:
                return parallel
        results: List[ComplianceResult] = []
        if trace_ids is None and self.store.indexed:
            grouped = None
            for trace_id in self.store.app_ids():
                frame = self._frames.get(trace_id) if self.share_contexts \
                    else None
                if frame is None:
                    if grouped is None:
                        grouped = self.store.records_by_trace()
                    self.graph_builds += 1
                    frame = self._adopt_frame(
                        trace_id,
                        graph_from_records(
                            grouped.get(trace_id, ()), name=trace_id
                        ),
                    )
                for control in controls:
                    results.append(
                        _check_with_frame(
                            self.engine, control, frame, None,
                            self.observable_types,
                        )
                    )
            return results
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        for trace_id in ids:
            frame = self._frame_for(trace_id)
            for control in controls:
                results.append(
                    _check_with_frame(
                        self.engine, control, frame, None,
                        self.observable_types,
                    )
                )
        return results

    def _run_forked(
        self, controls: Sequence[InternalControl], jobs: int
    ) -> Optional[List[ComplianceResult]]:
        """Full sweep across forked workers; None → caller runs serial.

        The parent snapshots the store into per-trace record lists *before*
        forking, so workers never touch the storage backend (no SQLite
        connection crosses the fork) — they only read inherited memory.
        """
        global _FORK_STATE
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (e.g. Windows)
            return None
        ids = self.store.app_ids()
        if len(ids) < 2:
            return None
        jobs = min(jobs, len(ids))
        grouped = self.store.records_by_trace()
        # Contiguous partitions keep concatenated results in serial order.
        bounds = [
            (len(ids) * i // jobs, len(ids) * (i + 1) // jobs)
            for i in range(jobs)
        ]
        chunks = [ids[lo:hi] for lo, hi in bounds if lo < hi]
        _FORK_STATE = (
            self.engine, tuple(controls), grouped, self.observable_types
        )
        try:
            with context.Pool(processes=len(chunks)) as pool:
                parts = pool.map(_sweep_partition, chunks)
        finally:
            _FORK_STATE = None
        return [result for part in parts for result in part]

    # -- reporting ------------------------------------------------------------------

    @staticmethod
    def violations(
        results: Iterable[ComplianceResult],
    ) -> List[ComplianceResult]:
        """The exception report: only violated results."""
        return [
            result
            for result in results
            if result.status is ComplianceStatus.VIOLATED
        ]

    @staticmethod
    def summary(
        results: Iterable[ComplianceResult],
    ) -> Dict[str, Dict[str, int]]:
        """Per-control counts by status."""
        table: Dict[str, Dict[str, int]] = {}
        for result in results:
            row = table.setdefault(
                result.control_name,
                {status.value: 0 for status in ComplianceStatus},
            )
            row[result.status.value] += 1
        return table
