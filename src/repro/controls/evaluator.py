"""Evaluating internal controls across execution traces.

The :class:`ComplianceEvaluator` is the on-demand (query-frontend) style of
§II.A: given a store and a set of controls, it builds each trace's graph
and runs every control against it, producing
:class:`~repro.controls.status.ComplianceResult` rows.  The deployed
(real-time) style lives in :mod:`repro.controls.deployment`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.brms.engine import RuleEngine
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.controls.control import InternalControl
from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.graph.build import build_trace_graph, graph_from_records
from repro.graph.graph import ProvenanceGraph
from repro.store.store import ProvenanceStore


class ComplianceEvaluator:
    """Runs controls over trace graphs built from a provenance store."""

    def __init__(
        self,
        store: ProvenanceStore,
        xom: ExecutableObjectModel,
        vocabulary: Vocabulary,
        observable_types: Optional[Set[str]] = None,
    ) -> None:
        self.store = store
        self.engine = RuleEngine(xom, vocabulary)
        self.observable_types = observable_types

    # -- single control -----------------------------------------------------

    def check_trace(
        self,
        control: InternalControl,
        trace_id: str,
        parameters: Optional[Dict[str, object]] = None,
        graph: Optional[ProvenanceGraph] = None,
        as_of: Optional[int] = None,
    ) -> ComplianceResult:
        """Check one control against one trace.

        Args:
            as_of: evaluate against the trace *as it looked* at this
                simulated time (records with later timestamps are invisible)
                — the audit question "was this trace compliant on date X?".
        """
        if graph is None:
            graph = build_trace_graph(self.store, trace_id, as_of=as_of)
        outcome = self.engine.evaluate(
            control.compiled,
            graph,
            parameters=control.resolve_parameters(parameters),
            observable_types=self.observable_types,
        )
        result = ComplianceResult.from_outcome(outcome)
        result.control_name = control.name
        result.checked_at = max(
            (record.timestamp for record in graph.nodes()), default=0
        )
        return result

    def check_all_traces(
        self,
        control: InternalControl,
        trace_ids: Optional[Iterable[str]] = None,
        parameters: Optional[Dict[str, object]] = None,
    ) -> List[ComplianceResult]:
        """Check one control against every trace in the store."""
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        return [self.check_trace(control, trace_id, parameters)
                for trace_id in ids]

    # -- control sets ----------------------------------------------------------

    def run(
        self,
        controls: Sequence[InternalControl],
        trace_ids: Optional[Iterable[str]] = None,
    ) -> List[ComplianceResult]:
        """Check every control against every trace (graphs built once).

        A full sweep groups one sequential storage-backend scan by trace
        instead of issuing one store query per trace — on lazy backends
        (SQLite) that is one pass over the table rather than thousands of
        point lookups.  Restricting to *trace_ids* keeps the per-trace
        query path, and so does an unindexed store: with the E8 ablation
        knob off, every evaluation is *supposed* to pay a table scan.
        """
        results: List[ComplianceResult] = []
        if trace_ids is None and self.store.indexed:
            grouped = self.store.records_by_trace()
            for trace_id in self.store.app_ids():
                graph = graph_from_records(
                    grouped.get(trace_id, ()), name=trace_id
                )
                for control in controls:
                    results.append(
                        self.check_trace(control, trace_id, graph=graph)
                    )
            return results
        ids = list(trace_ids) if trace_ids is not None else self.store.app_ids()
        for trace_id in ids:
            graph = build_trace_graph(self.store, trace_id)
            for control in controls:
                results.append(
                    self.check_trace(control, trace_id, graph=graph)
                )
        return results

    # -- reporting ------------------------------------------------------------------

    @staticmethod
    def violations(
        results: Iterable[ComplianceResult],
    ) -> List[ComplianceResult]:
        """The exception report: only violated results."""
        return [
            result
            for result in results
            if result.status is ComplianceStatus.VIOLATED
        ]

    @staticmethod
    def summary(
        results: Iterable[ComplianceResult],
    ) -> Dict[str, Dict[str, int]]:
        """Per-control counts by status."""
        table: Dict[str, Dict[str, int]] = {}
        for result in results:
            row = table.setdefault(
                result.control_name,
                {status.value: 0 for status in ComplianceStatus},
            )
            row[result.status.value] += 1
        return table
