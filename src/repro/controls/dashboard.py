"""The compliance dashboard.

"The compliance results of process execution traces against the deployed
internal control points are then queried from the provenance store and
results are displayed in a dashboard" (§III).  The
:class:`ComplianceDashboard` consumes results — pushed live from a
:class:`~repro.controls.deployment.ControlDeployment` or loaded in bulk —
and renders the key performance indicators the paper's dashboard displays:
per-control compliance rates, violation counts by severity, and an
exception list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.controls.control import ControlSeverity, InternalControl
from repro.controls.materializer import VerdictTransition
from repro.controls.status import ComplianceResult, ComplianceStatus


@dataclass
class ControlKpi:
    """Aggregated key performance indicators for one control."""

    control_name: str
    satisfied: int = 0
    violated: int = 0
    not_applicable: int = 0
    undetermined: int = 0

    @property
    def checked(self) -> int:
        return (
            self.satisfied
            + self.violated
            + self.not_applicable
            + self.undetermined
        )

    @property
    def conclusive(self) -> int:
        return self.satisfied + self.violated

    @property
    def compliance_rate(self) -> Optional[float]:
        """Satisfied share of conclusive checks; None with no evidence."""
        if not self.conclusive:
            return None
        return self.satisfied / self.conclusive

    def add(self, status: ComplianceStatus) -> None:
        if status is ComplianceStatus.SATISFIED:
            self.satisfied += 1
        elif status is ComplianceStatus.VIOLATED:
            self.violated += 1
        elif status is ComplianceStatus.NOT_APPLICABLE:
            self.not_applicable += 1
        else:
            self.undetermined += 1


class ComplianceDashboard:
    """Aggregates compliance results into KPIs and renders them as text."""

    def __init__(self) -> None:
        self._kpis: Dict[str, ControlKpi] = {}
        self._latest: Dict[Tuple[str, str], ComplianceResult] = {}
        self._severities: Dict[str, ControlSeverity] = {}
        self._transitions: List[VerdictTransition] = []

    # -- feeding -------------------------------------------------------------

    def register_control(self, control: InternalControl) -> None:
        """Optional: register severity metadata for richer reporting."""
        self._severities[control.name] = control.severity

    def record(self, result: ComplianceResult) -> None:
        """Consume one result (usable directly as a deployment listener).

        Re-checks of the same (control, trace) pair replace the previous
        result — KPIs always reflect the latest state, not the history.
        """
        key = (result.control_name, result.trace_id)
        previous = self._latest.get(key)
        kpi = self._kpis.setdefault(
            result.control_name, ControlKpi(result.control_name)
        )
        if previous is not None:
            self._remove(kpi, previous.status)
        kpi.add(result.status)
        self._latest[key] = result

    @staticmethod
    def _remove(kpi: ControlKpi, status: ComplianceStatus) -> None:
        if status is ComplianceStatus.SATISFIED:
            kpi.satisfied -= 1
        elif status is ComplianceStatus.VIOLATED:
            kpi.violated -= 1
        elif status is ComplianceStatus.NOT_APPLICABLE:
            kpi.not_applicable -= 1
        else:
            kpi.undetermined -= 1

    def record_all(self, results) -> None:
        for result in results:
            self.record(result)

    def on_transition(self, transition: VerdictTransition) -> None:
        """Consume one verdict delta (usable directly as a
        :meth:`VerdictMaterializer.subscribe <repro.controls.materializer.
        VerdictMaterializer.subscribe>` listener).

        KPIs update from the fresh result; actual status *flips*
        (``transition.changed``) are additionally kept as a transition log,
        which is the "what just went red" feed a live dashboard shows next
        to the steady-state rates.
        """
        self.record(transition.result)
        if transition.changed:
            self._transitions.append(transition)

    # -- reading ------------------------------------------------------------------

    def kpi(self, control_name: str) -> Optional[ControlKpi]:
        return self._kpis.get(control_name)

    def kpis(self) -> List[ControlKpi]:
        return list(self._kpis.values())

    def transitions(self) -> List[VerdictTransition]:
        """Status flips observed via :meth:`on_transition`, oldest first."""
        return list(self._transitions)

    def exceptions(self) -> List[ComplianceResult]:
        """All current violations, highest severity first."""
        order = {
            ControlSeverity.CRITICAL: 0,
            ControlSeverity.HIGH: 1,
            ControlSeverity.MEDIUM: 2,
            ControlSeverity.LOW: 3,
        }
        violations = [
            result
            for result in self._latest.values()
            if result.status is ComplianceStatus.VIOLATED
        ]
        violations.sort(
            key=lambda r: (
                order.get(
                    self._severities.get(r.control_name,
                                         ControlSeverity.MEDIUM),
                    2,
                ),
                r.control_name,
                r.trace_id,
            )
        )
        return violations

    # -- rendering -------------------------------------------------------------------

    def render(self) -> str:
        """The text dashboard: one KPI row per control plus exceptions."""
        lines = ["COMPLIANCE DASHBOARD", "=" * 72]
        header = (
            f"{'control':<32}{'ok':>5}{'viol':>6}{'n/a':>6}"
            f"{'und':>6}{'rate':>8}"
        )
        lines.append(header)
        lines.append("-" * 72)
        for kpi in sorted(self._kpis.values(), key=lambda k: k.control_name):
            rate = (
                f"{kpi.compliance_rate:6.1%}"
                if kpi.compliance_rate is not None
                else "   n/a"
            )
            lines.append(
                f"{kpi.control_name:<32}{kpi.satisfied:>5}"
                f"{kpi.violated:>6}{kpi.not_applicable:>6}"
                f"{kpi.undetermined:>6}{rate:>8}"
            )
        exceptions = self.exceptions()
        if exceptions:
            lines.append("-" * 72)
            lines.append(f"EXCEPTIONS ({len(exceptions)})")
            for result in exceptions:
                severity = self._severities.get(
                    result.control_name, ControlSeverity.MEDIUM
                )
                lines.append(f"  [{severity.value:>8}] {result.describe()}")
        if self._transitions:
            lines.append("-" * 72)
            lines.append(f"STATUS TRANSITIONS ({len(self._transitions)})")
            for transition in self._transitions:
                lines.append(f"  {transition.describe()}")
        return "\n".join(lines)
