"""The crash-recovery model checker.

One *schedule* is a seeded, randomized interleaving of the operations a
production deployment actually performs — append (plain and bulk), flush,
sweep, targeted check, verdict-snapshot save — run against a
:class:`~repro.faults.backend.FaultyBackend` executing a seeded
:class:`~repro.faults.plan.FaultPlan`, until a scripted fault kills the
process model (or the stream ends and the power is cut).  The store is
then recovered and held to the invariants that make provenance a usable
audit record of last resort:

1. **No torn rows** — every recovered row decodes; a row is either
   wholly there or wholly absent.
2. **Clean prefix** — the recovered rows are byte-identical to a prefix
   of the acknowledged appends (no interior gaps, no duplicates, no
   phantom rows), and the prefix is at least the durability floor (rows
   flushed before the crash, minus any scripted fsync drop).
3. **Snapshot sanity** — a restored materialized-verdict snapshot never
   has a cursor past the recovered ``last_seq``, and never holds a
   verdict for a trace the recovered store does not contain.
4. **Convergence** — a sweep over the recovered store (through whatever
   snapshot survived) is byte-identical to a cold sweep by a
   never-crashed oracle evaluator over exactly the surviving records.

Every violation raises :class:`CheckFailure` whose message carries the
replay seed and the plan's fault log, so a CI failure reproduces with
``python -m repro chaos --seed N --backend B --schedules 1``.

Scenario traffic comes from the real hiring workload simulator (cached
per process), so schedules exercise the same records, controls, and
vocabulary stack as production sweeps.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.controls.evaluator import ComplianceEvaluator
from repro.errors import StoreError
from repro.faults.backend import FaultyBackend
from repro.faults.plan import FaultInjected, FaultPlan, SimulatedCrash
from repro.faults.points import active_plan
from repro.model.records import ProvenanceRecord
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
)
from repro.store.backends.sharded import shard_index_for
from repro.store.cursor import cursor_covers
from repro.store.store import ProvenanceStore

#: backends the checker knows how to crash and recover.
BACKEND_KINDS = ("memory", "sqlite")

#: crash points the randomized scheduler arms, per backend kind.  The
#: sqlite transaction-boundary points exist only on the sqlite backend.
_CRASH_POINTS = {
    "memory": (
        "store.append.before_commit",
        "store.append.after_commit_before_index",
        "store.flush",
        "store.bulk.exit",
        "store.close",
        "materializer.save.mid_snapshot",
    ),
    "sqlite": (
        "store.append.before_commit",
        "store.append.after_commit_before_index",
        "store.flush",
        "store.bulk.exit",
        "store.close",
        "materializer.save.mid_snapshot",
        "sqlite.flush.before_commit",
        "sqlite.flush.after_commit",
    ),
}


class CheckFailure(AssertionError):
    """A recovered store broke a crash-consistency invariant.

    The message always embeds the schedule seed and the fault log, so the
    failure is replayable from the test output alone.
    """


@dataclass
class ScheduleReport:
    """What one schedule did and what survived."""

    seed: int
    backend: str
    scenario: str
    crashed: bool
    crash_site: Optional[str]
    fault_log: str
    acknowledged: int
    recovered: int
    durable_floor: int
    snapshot_restored: bool
    verdicts_checked: int
    shards: int = 1

    def describe(self) -> str:
        outcome = (
            f"crash@{self.crash_site}" if self.crashed else "clean close"
        )
        sharding = f" shards={self.shards}" if self.shards > 1 else ""
        return (
            f"seed={self.seed} backend={self.backend}{sharding} "
            f"scenario={self.scenario}: {outcome}; "
            f"{self.recovered}/{self.acknowledged} rows survived "
            f"(floor {self.durable_floor}), "
            f"snapshot {'restored' if self.snapshot_restored else 'cold'}, "
            f"{self.verdicts_checked} verdicts converged"
        )


@dataclass
class _Scenario:
    """A cached workload stack the schedules replay records from."""

    name: str
    model: object
    xom: object
    vocabulary: object
    controls: Sequence[object]
    streams: Dict[str, List[ProvenanceRecord]]


@lru_cache(maxsize=None)
def _scenarios() -> Tuple[_Scenario, ...]:
    """Simulated hiring traffic at several violation mixes, one simulation
    each per process — schedules replay the records, never re-simulate."""
    from repro.processes import hiring
    from repro.processes.violations import ViolationPlan

    bundles = []
    for name, cases, sim_seed, rate in (
        ("clean", 3, 11, 0.0),
        ("mixed", 4, 23, 0.35),
        ("dirty", 3, 41, 0.7),
    ):
        workload = hiring.workload()
        plan = (
            ViolationPlan.uniform(list(workload.violation_kinds), rate)
            if rate > 0
            else ViolationPlan.none()
        )
        sim = workload.simulate(cases=cases, seed=sim_seed, violations=plan)
        streams = {
            trace_id: list(records)
            for trace_id, records in sim.store.records_by_trace().items()
        }
        sim.store.close()
        bundles.append(
            _Scenario(
                name=name,
                model=sim.model,
                xom=sim.xom,
                vocabulary=sim.vocabulary,
                controls=tuple(sim.controls),
                streams=streams,
            )
        )
    return tuple(bundles)


def _norm(results) -> List[tuple]:
    """Every observable field of a sweep, for byte-identity comparison."""
    return [
        (
            r.control_name,
            r.trace_id,
            r.status,
            r.checked_at,
            tuple(r.alerts),
            tuple(sorted(r.bound_nodes.items())),
            tuple(r.touched_nodes),
        )
        for r in results
    ]


def _interleave(rng: random.Random, streams) -> List[ProvenanceRecord]:
    """Order-preserving random merge of per-trace record streams."""
    pending = [list(s) for s in streams]
    merged: List[ProvenanceRecord] = []
    while True:
        candidates = [i for i, s in enumerate(pending) if s]
        if not candidates:
            return merged
        merged.append(pending[rng.choice(candidates)].pop(0))


def _script_faults(
    rng: random.Random,
    plan: FaultPlan,
    backend: str,
    total_records: int,
    points: Optional[Sequence[str]] = None,
) -> None:
    """Arm a seeded mix of faults on *plan*.  A schedule may script no
    crash at all — then the power is cut when the stream ends."""
    if rng.random() < 0.8:
        point = rng.choice(points or _CRASH_POINTS[backend])
        plan.crash_at(point, occurrence=rng.randrange(1, 8))
    if rng.random() < 0.3:
        plan.tear_flush(nth=rng.randrange(1, 5))
    if rng.random() < 0.2:
        plan.fail_write(nth=rng.randrange(1, max(2, total_records)))
    if backend == "sqlite" and rng.random() < 0.25:
        plan.drop_fsync_after(nth_flush=rng.randrange(1, 4))


def run_schedule(
    seed: int,
    backend: str = "memory",
    workdir: Optional[str] = None,
    shards: int = 1,
) -> ScheduleReport:
    """Run one seeded crash schedule and verify the recovery invariants.

    With *shards* > 1 the store is a :class:`ShardedBackend` whose
    children are individually fault-wrapped: a scripted crash can kill
    one shard mid-flush while the others survive, and the recovery
    invariants are then asserted per shard (each recovered shard holds a
    clean prefix of the appends routed to it, at or above that shard's
    durability floor) as well as globally.

    Raises :class:`CheckFailure` (with the replay seed in the message) on
    any violation; returns a :class:`ScheduleReport` on success.
    """
    if backend not in BACKEND_KINDS:
        raise ValueError(f"unknown backend kind {backend!r}")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return run_schedule(seed, backend, workdir=tmp, shards=shards)

    rng = random.Random(f"chaos:{seed}")
    scenario = _scenarios()[rng.randrange(len(_scenarios()))]
    trace_ids = sorted(scenario.streams)
    chosen = rng.sample(trace_ids, rng.randrange(2, len(trace_ids) + 1))
    records = _interleave(rng, [scenario.streams[t] for t in chosen])

    plan = FaultPlan(seed=seed)
    points = _CRASH_POINTS[backend]
    if shards > 1:
        # Shard-level crash windows: die between one shard's flush and
        # the next, or on the routed append path of one shard.
        points = points + tuple(
            f"sharded.flush.shard{i}" for i in range(shards)
        ) + tuple(
            f"sharded.append.shard{i}" for i in range(shards)
        )
    _script_faults(rng, plan, backend, len(records), points=points)

    def make_child(index: int):
        if backend == "sqlite":
            suffix = f"-shard{index}" if shards > 1 else ""
            return SQLiteBackend(
                os.path.join(workdir, f"chaos-{seed}{suffix}.db"),
                batch_size=rng.choice((2, 8, 256)),
            )
        return MemoryBackend()

    # One fault proxy per shard, all driven by the one plan (its write
    # and flush counters stay global, like one dying process).
    proxies = [
        FaultyBackend(make_child(i), plan) for i in range(shards)
    ]
    faulty = ShardedBackend(proxies) if shards > 1 else proxies[0]

    def fail(detail: str) -> CheckFailure:
        shard_arg = f" --shards {shards}" if shards > 1 else ""
        return CheckFailure(
            f"[chaos seed={seed} backend={backend} shards={shards} "
            f"scenario={scenario.name}] {detail}\n"
            f"  {plan.describe()}\n"
            f"  replay: python -m repro chaos --seed {seed} "
            f"--backend {backend}{shard_arg} --schedules 1"
        )

    store = ProvenanceStore(model=scenario.model, backend=faulty)
    evaluator = ComplianceEvaluator(
        store, scenario.xom, scenario.vocabulary
    )
    controls = list(scenario.controls)
    # Every append the faulty store acknowledged, in order.  The oracle
    # stores are built from this list only *after* the schedule: while the
    # plan is active, crash points are global, and a mirror store's own
    # appends must not advance the scripted occurrence counters.
    acked_records: List[ProvenanceRecord] = []

    crashed = False
    crash_site = None
    queue = list(records)
    with active_plan(plan):
        try:
            while queue:
                chunk = [queue.pop(0) for __ in range(
                    min(len(queue), rng.randrange(1, 7))
                )]
                if rng.random() < 0.5:
                    with store.bulk():
                        for record in chunk:
                            _append_acked(store, record, acked_records)
                else:
                    for record in chunk:
                        _append_acked(store, record, acked_records)
                roll = rng.random()
                if roll < 0.25:
                    store.flush()
                elif roll < 0.45:
                    evaluator.run(controls)
                elif roll < 0.55:
                    trace = rng.choice(chosen)
                    evaluator.check_trace(rng.choice(controls), trace)
                elif roll < 0.68:
                    for control in controls:
                        evaluator.materializer.register(control)
                    evaluator.materializer.save()
            if rng.random() < 0.4:
                store.close()
            else:
                # The stream ended before any scripted fault fired: cut
                # the power anyway, so un-flushed tails and frozen fsync
                # images still get exercised.
                crashed = True
                crash_site = "power-cut"
                for proxy in proxies:
                    proxy.crash()
        except SimulatedCrash as crash:
            crashed = True
            crash_site = crash.point
            for proxy in proxies:
                proxy.crash()

    shard_floors = [proxy.durable_floor() for proxy in proxies]
    durable_floor = sum(shard_floors)
    staged_lost = sum(proxy.staged_count() for proxy in proxies)
    del store, evaluator  # the crashed process is gone

    # -- recovery -----------------------------------------------------------
    try:
        if shards > 1:
            recovered_backend = ShardedBackend(
                [proxy.recover() for proxy in proxies]
            )
        else:
            recovered_backend = proxies[0].recover()
        recovered = ProvenanceStore(
            model=scenario.model, backend=recovered_backend
        )
        surviving_rows = [
            (r.record_id, r.record_class, r.app_id, r.xml)
            for r in recovered.rows()
        ]
        for row in recovered.rows():
            # Row-level decode, independent of the hydration above: a torn
            # row must be *detected*, not repaired in passing.
            recovered._decode(row)
    except StoreError as exc:
        raise fail(f"recovered store holds undecodable rows: {exc}") from exc

    acked = ProvenanceStore(model=scenario.model)
    for record in acked_records:
        acked.append(record)
    acked_rows = [
        (r.record_id, r.record_class, r.app_id, r.xml)
        for r in acked.rows()
    ]

    # Invariant 2: clean prefix, at or above the durability floor —
    # asserted per shard, because each shard loses its own staged tail
    # independently (shards=1 degenerates to the global check).
    for index in range(shards):
        routed = [
            row for row in acked_rows
            if shard_index_for(row[2], shards) == index
        ]
        child = (
            recovered_backend.shard(index) if shards > 1
            else recovered_backend
        )
        child_rows = [
            (r.record_id, r.record_class, r.app_id, r.xml)
            for r in child.iter_rows()
        ]
        if child_rows != routed[: len(child_rows)]:
            raise fail(
                f"shard {index}: recovered rows are not a prefix of the "
                f"{len(routed)} appends routed to it "
                f"(got {len(child_rows)} rows)"
            )
        if len(child_rows) < shard_floors[index]:
            raise fail(
                f"shard {index}: recovered {len(child_rows)} rows but "
                f"{shard_floors[index]} were flushed before the crash "
                f"({staged_lost} staged rows were legitimately lost)"
            )
    ids = [row[0] for row in surviving_rows]
    if len(set(ids)) != len(ids):
        raise fail("recovered store holds duplicate row ids")

    # Invariant 3: snapshot sanity through the change feed.
    recovered_eval = ComplianceEvaluator(
        recovered, scenario.xom, scenario.vocabulary
    )
    materializer = recovered_eval.materializer
    for control in controls:
        materializer.register(control)
    restored = materializer.restore()
    if not cursor_covers(recovered.last_seq(), materializer.cursor):
        raise fail(
            f"restored materializer cursor {materializer.cursor} is past "
            f"the recovered last_seq {recovered.last_seq()}"
        )
    surviving_traces = set(recovered.app_ids())
    if restored:
        for result in materializer.all_latest():
            if result.trace_id not in surviving_traces:
                raise fail(
                    f"phantom verdict: snapshot holds "
                    f"({result.control_name}, {result.trace_id}) but the "
                    f"recovered store has no such trace"
                )

    # Invariant 4: re-sweep converges to the never-crashed oracle.  The
    # oracle mirrors the shard layout (a sharded memory store) so both
    # sweeps enumerate traces in the same canonical shard-grouped order;
    # the surviving set is the union of per-shard prefixes, selected by
    # recovered row id since it is no longer one global prefix.
    oracle_backend = (
        ShardedBackend([MemoryBackend() for _ in range(shards)])
        if shards > 1
        else None
    )
    oracle_store = ProvenanceStore(
        model=scenario.model, backend=oracle_backend
    )
    surviving_ids = set(ids)
    for record in acked_records:
        if record.record_id in surviving_ids:
            oracle_store.append(record)
    oracle_eval = ComplianceEvaluator(
        oracle_store, scenario.xom, scenario.vocabulary,
        share_contexts=False,
    )
    got = _norm(recovered_eval.run(controls))
    want = _norm(oracle_eval.run(controls))
    if got != want:
        raise fail(
            "post-recovery sweep diverged from the never-crashed oracle "
            f"({sum(1 for g, w in zip(got, want) if g != w)} rows differ)"
        )

    recovered.close()
    oracle_store.close()
    acked.close()
    return ScheduleReport(
        seed=seed,
        backend=backend,
        scenario=scenario.name,
        crashed=crashed,
        crash_site=crash_site,
        fault_log=plan.describe(),
        acknowledged=len(acked_rows),
        recovered=len(surviving_rows),
        durable_floor=durable_floor,
        snapshot_restored=restored,
        verdicts_checked=len(got),
        shards=shards,
    )


def _append_acked(
    store: ProvenanceStore,
    record: ProvenanceRecord,
    acked_records: List[ProvenanceRecord],
) -> None:
    """Append to the faulty store; record the acknowledgement only if the
    append returned (a scripted transient failure is loud, the row is
    simply not stored, and the store stays coherent)."""
    try:
        store.append(record)
    except FaultInjected:
        return
    acked_records.append(record)


def run_schedules(
    count: int,
    base_seed: int = 0,
    backends: Sequence[str] = BACKEND_KINDS,
    workdir: Optional[str] = None,
    on_report=None,
    shards: int = 1,
) -> List[ScheduleReport]:
    """Run *count* schedules per backend kind; seeds are
    ``base_seed + i`` so any failure names the one schedule to replay."""
    reports: List[ScheduleReport] = []
    for kind in backends:
        for i in range(count):
            report = run_schedule(
                base_seed + i, kind, workdir=workdir, shards=shards
            )
            if on_report is not None:
                on_report(report)
            reports.append(report)
    return reports
