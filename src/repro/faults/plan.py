"""Seeded, scripted fault schedules.

A :class:`FaultPlan` is the single source of truth for *which* faults fire
*when* during one run: the Nth physical write can raise a transient
:class:`~repro.errors.BackendError`, the Nth flush can tear (commit a
prefix of the batch, then die), a named crash point can kill the process
model mid-operation, and the SQLite fsync image can be frozen so commits
after the freeze are lost at crash time.

Two properties make failures replayable:

- every decision derives from the plan's ``seed`` (or from an explicit
  script), never from ambient randomness, and
- the plan keeps a :attr:`FaultPlan.fired` log of every fault it injected,
  so a failing schedule can print exactly what it did.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`,
not :class:`Exception`: a crash is not an application error, and library
code that recovers from *errors* (``except Exception`` fallbacks, retry
loops) must not be able to swallow a scripted process death — exactly as
it could not swallow a real ``SIGKILL``.  Only the fault harness catches
it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import BackendError


class SimulatedCrash(BaseException):
    """The process model died at a crash point (or mid-tear).

    Carries the crash-point name (or the synthetic site, e.g.
    ``"flush.torn"``) so harness reports can say where the run died.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class FaultInjected(BackendError):
    """A scripted transient write failure (not a crash).

    Subclasses :class:`~repro.errors.BackendError` so callers exercise
    their real error paths; distinguishable from organic backend failures
    by type.
    """


class FaultPlan:
    """A deterministic schedule of faults for one run.

    Args:
        seed: replay seed; recorded in reports and used for any random
            choice the plan itself must make (e.g. how many rows a torn
            flush keeps when the script did not say).

    The scripting methods return ``self`` so plans read as one chain::

        plan = (
            FaultPlan(seed=42)
            .crash_at("after_commit_before_index", occurrence=3)
            .tear_flush(nth=2)
        )

    Crash-point names match either exactly or by dotted suffix:
    ``crash_at("before_commit")`` fires at
    ``"store.append.before_commit"``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        #: scripted crashes: (point name or suffix, occurrence) → armed.
        self._crashes: Dict[Tuple[str, int], bool] = {}
        #: write numbers (1-based) that raise a transient error.
        self._failing_writes: Dict[int, str] = {}
        #: flush numbers (1-based) that tear: value = rows kept, or None
        #: for a seeded random prefix.
        self._torn_flushes: Dict[int, Optional[int]] = {}
        #: write numbers (1-based) whose row is corrupted at rest.
        self._corrupt_writes: Dict[int, str] = {}
        #: flush number after which the durable (fsync) image is frozen.
        self.fsync_freeze_after: Optional[int] = None
        # -- live counters ---------------------------------------------------
        #: physical writes attempted so far.
        self.writes = 0
        #: flushes attempted so far.
        self.flushes = 0
        #: crash-point name → times reached.
        self.reached: Dict[str, int] = {}
        #: log of every fault injected, in order, for failure reports.
        self.fired: List[str] = []
        #: latched once a crash fires.  The process model is dead from
        #: that instant: code still unwinding (``finally`` blocks,
        #: context-manager exits) runs only in Python, so crash points
        #: stop firing and the faulty backend drops further writes.
        self.crash_fired = False

    # -- scripting -----------------------------------------------------------

    def crash_at(self, point: str, occurrence: int = 1) -> "FaultPlan":
        """Die with :class:`SimulatedCrash` the *occurrence*-th time
        *point* is reached (exact name or dotted suffix)."""
        self._crashes[(point, occurrence)] = True
        return self

    def fail_write(self, nth: int, message: str = "") -> "FaultPlan":
        """Raise a transient :class:`FaultInjected` on the *nth* write."""
        self._failing_writes[nth] = message or f"scripted failure of write #{nth}"
        return self

    def tear_flush(self, nth: int, keep: Optional[int] = None) -> "FaultPlan":
        """Tear the *nth* flush: commit only *keep* rows of the batch
        (seeded-random prefix when ``None``), then crash."""
        self._torn_flushes[nth] = keep
        return self

    def corrupt_write(self, nth: int) -> "FaultPlan":
        """Persist the *nth* written row with truncated XML — at-rest
        corruption that must be *detected*, never silently repaired."""
        self._corrupt_writes[nth] = f"corrupted row of write #{nth}"
        return self

    def drop_fsync_after(self, nth_flush: int) -> "FaultPlan":
        """Freeze the durable image after the *nth* successful flush:
        later commits reach the live file but are lost at crash time
        (the lost-page-cache / dropped-fsync window of
        ``synchronous=NORMAL``)."""
        self.fsync_freeze_after = nth_flush
        return self

    # -- interrogation (called by the harness) -------------------------------

    def reached_point(self, point: str) -> None:
        """Record that *point* was reached; crash if the script says so."""
        if self.crash_fired:
            return  # already dead; unwinding code reaches no more points
        count = self.reached.get(point, 0) + 1
        self.reached[point] = count
        for (name, occurrence), armed in self._crashes.items():
            if not armed or occurrence != count:
                continue
            if point == name or point.endswith("." + name):
                self._crashes[(name, occurrence)] = False
                self.fired.append(f"crash@{point}#{count}")
                self.crash_fired = True
                raise SimulatedCrash(point)

    def on_write(self) -> bool:
        """Account one physical write.  Raises :class:`FaultInjected` when
        scripted to fail; returns True when the row must be corrupted."""
        self.writes += 1
        message = self._failing_writes.pop(self.writes, None)
        if message is not None:
            self.fired.append(f"fail-write#{self.writes}")
            raise FaultInjected(message)
        if self.writes in self._corrupt_writes:
            self.fired.append(f"corrupt-write#{self.writes}")
            return True
        return False

    def on_flush(self, batch_size: int) -> Optional[int]:
        """Account one flush of *batch_size* staged rows.

        Returns ``None`` for a normal flush, or the number of rows to
        commit before dying (a torn batch).  The tear itself — committing
        the prefix and raising :class:`SimulatedCrash` — is the backend's
        job; the plan only decides.
        """
        self.flushes += 1
        if self.flushes not in self._torn_flushes:
            return None
        keep = self._torn_flushes.pop(self.flushes)
        if keep is None:
            keep = self.rng.randrange(batch_size + 1) if batch_size else 0
        keep = max(0, min(keep, batch_size))
        self.fired.append(f"tear-flush#{self.flushes}(keep={keep})")
        self.crash_fired = True  # the flush commits `keep` rows, then dies
        return keep

    def describe(self) -> str:
        """One line for failure reports: seed plus every fault fired."""
        fired = ", ".join(self.fired) if self.fired else "no faults fired"
        return f"FaultPlan(seed={self.seed}): {fired}"
