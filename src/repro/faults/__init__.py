"""Deterministic fault injection and crash-recovery model checking.

The paper's premise is that provenance is the audit record of last resort
(§II.A): every control point is only as trustworthy as the store's rows.
A store that silently loses, duplicates, or tears rows after a crash
undermines the whole audit chain — and log durability, not rule
expressiveness, is where audit systems actually fail in practice.

This package makes those failures *first-class and replayable*:

- :class:`~repro.faults.plan.FaultPlan` — a seeded, scripted schedule of
  faults (raise on the Nth write, tear the Nth flush, crash at a named
  crash point, freeze the fsync image); every injected failure is
  reproducible from its seed.
- :class:`~repro.faults.backend.FaultyBackend` — a
  :class:`~repro.store.backends.base.StorageBackend` proxy that wraps any
  real backend and executes the plan, then models process death
  (:meth:`~repro.faults.backend.FaultyBackend.crash`) and recovery
  (:meth:`~repro.faults.backend.FaultyBackend.recover`).
- :mod:`~repro.faults.points` — named crash points threaded (no-op by
  default) through the store's commit path, SQLite transaction
  boundaries, verdict-snapshot save/restore, and the parallel-sweep pool.
- :mod:`~repro.faults.checker` — the crash-recovery model checker: runs
  randomized append/evaluate/snapshot/crash/reopen schedules against a
  never-crashed oracle and asserts the recovered store is a clean,
  convergent prefix.  ``python -m repro chaos`` drives it from the CLI.
"""

from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.faults.points import active_plan, crash_point

# FaultyBackend and the model checker depend on the store/controls layers,
# which themselves call crash_point() — so those symbols load lazily to
# keep `repro.store.backends.sqlite` → `repro.faults.points` acyclic.
_LAZY = {
    "FaultyBackend": ("repro.faults.backend", "FaultyBackend"),
    "CheckFailure": ("repro.faults.checker", "CheckFailure"),
    "ScheduleReport": ("repro.faults.checker", "ScheduleReport"),
    "run_schedule": ("repro.faults.checker", "run_schedule"),
    "run_schedules": ("repro.faults.checker", "run_schedules"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "CheckFailure",
    "FaultPlan",
    "FaultyBackend",
    "ScheduleReport",
    "SimulatedCrash",
    "active_plan",
    "crash_point",
    "run_schedule",
    "run_schedules",
]
