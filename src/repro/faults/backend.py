"""A storage-backend proxy that injects scripted faults and models crashes.

:class:`FaultyBackend` wraps any real
:class:`~repro.store.backends.base.StorageBackend` and runs a
:class:`~repro.faults.plan.FaultPlan` against it.  Its central device is
an explicit **staging buffer**: appended rows are held in the proxy and
only forwarded (and committed) to the inner backend at flush boundaries.
That makes the durability frontier a first-class, inspectable line —

- rows behind the frontier (forwarded + committed) survive a crash,
- rows ahead of it (staged) are lost, exactly like a write buffer in a
  killed process,
- a **torn flush** commits a scripted prefix of the staged batch and
  dies, which is the worst outcome a transactional backend may legally
  produce (a clean prefix — never an interior gap),
- a **dropped fsync** freezes the durable image at a scripted commit
  (for SQLite files: a consistent temp-copy of the database taken with
  the backup API), so later commits reach the live file but vanish at
  crash time — the ``synchronous=NORMAL`` power-loss window.

Reads merge the staging buffer with the inner backend, so a wrapped
store behaves identically to an unwrapped one until a fault actually
fires; the conformance suite runs the full backend contract against a
fault-free :class:`FaultyBackend` to pin that.

Process death is modeled by :meth:`FaultyBackend.crash` (drop staged
rows, abandon the inner backend without flushing) and recovery by
:meth:`FaultyBackend.recover`, which returns a *fresh* backend holding
exactly what would have survived on disk.
"""

from __future__ import annotations

import shutil
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import BackendError, RecordNotFound
from repro.faults.plan import FaultPlan, SimulatedCrash
from repro.model.records import ProvenanceRecord
from repro.store.backends.base import StorageBackend
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.sqlite import SQLiteBackend
from repro.store.query import RecordQuery
from repro.store.xmlcodec import StoredRow


def _truncate(row: StoredRow) -> StoredRow:
    """The at-rest corruption shape: XML cut mid-document."""
    return StoredRow(
        record_id=row.record_id,
        record_class=row.record_class,
        app_id=row.app_id,
        xml=row.xml[: len(row.xml) // 2],
    )


class FaultyBackend(StorageBackend):
    """Fault-injecting proxy around a real storage backend.

    Args:
        inner: the backend rows ultimately live in.  SQLite backends must
            be file-backed for :meth:`recover` (a ``:memory:`` database
            has nothing to recover).
        plan: the scripted fault schedule; shared with the crash-point
            layer via :func:`repro.faults.points.active_plan` when the
            run also wants mid-operation crashes.
    """

    name = "faulty"

    def __init__(self, inner: StorageBackend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._staged: List[
            Tuple[StoredRow, Optional[ProvenanceRecord], Optional[str]]
        ] = []
        self._staged_ids: Dict[str, int] = {}
        self._bulk_depth = 0
        self._decoder = None
        self._crashed = False
        #: rows known committed in the inner backend (the durability
        #: frontier; updated only after a successful inner flush).
        self._durable_count = inner.count()
        #: mirror of every aux-state write, for memory-backend recovery.
        self._state_written: Dict[str, str] = {}
        #: frozen fsync image: (row count, state copy, sqlite image path).
        self._fsync_image: Optional[Tuple[int, Dict[str, str], Optional[str]]] = None

    # -- wiring --------------------------------------------------------------

    def set_decoder(self, decoder) -> None:
        self._decoder = decoder
        self.inner.set_decoder(decoder)

    def accepts_cols(self) -> bool:
        return not self._dead() and self.inner.accepts_cols()

    def bind_columnar(
        self, codec, indexed_attributes: Iterable[str] = ()
    ) -> None:
        if self._dead():
            return
        self.inner.bind_columnar(codec, indexed_attributes)

    def shard_count(self) -> int:
        return self.inner.shard_count()

    def shard_index(self, app_id: str) -> int:
        return self.inner.shard_index(app_id)

    def _check_alive(self) -> None:
        if self._crashed:
            raise BackendError("faulty backend has crashed; recover() first")

    def _dead(self) -> bool:
        """Whether the process model has died (crash fired or backend
        crashed).  Write-path methods silently drop their work then: the
        Python code still unwinding after a :class:`SimulatedCrash`
        (``finally`` blocks, context-manager exits) is post-mortem — in a
        real crash it never runs, so it must not persist anything."""
        return self._crashed or self.plan.crash_fired

    # -- writes --------------------------------------------------------------

    def append_row(
        self,
        row: StoredRow,
        record: Optional[ProvenanceRecord] = None,
        cols: Optional[str] = None,
    ) -> None:
        if self._dead():
            return
        if self.plan.on_write():
            # Corruption hits the physical row; the columnar payload is
            # dropped too, so reads hit the torn XML — masking the damage
            # behind a healthy sidecar would defeat the fault model.
            row = _truncate(row)
            cols = None
        self._staged.append((row, record, cols))
        self._staged_ids[row.record_id] = len(self._staged) - 1

    def flush(self) -> None:
        if self._dead():
            return
        if not self._staged:
            # Still a durability boundary for the inner backend.
            self.inner.flush()
            self._after_commit()
            return
        keep = self.plan.on_flush(len(self._staged))
        if keep is None:
            self._forward(len(self._staged))
            self._after_commit()
            return
        # Torn flush: commit a prefix, then the process dies.
        self._forward(keep)
        self._after_commit()
        self.crash()
        raise SimulatedCrash("flush.torn")

    def _forward(self, count: int) -> None:
        """Hand *count* staged rows to the inner backend and commit them."""
        batch, rest = self._staged[:count], self._staged[count:]
        for row, record, cols in batch:
            self.inner.append_row(row, record, cols)
        self.inner.flush()
        self._staged = rest
        self._staged_ids = {
            row.record_id: index for index, (row, __, __c) in enumerate(rest)
        }

    def _after_commit(self) -> None:
        """Advance the durability frontier; freeze the fsync image when
        the plan's scripted commit has been reached."""
        self._durable_count = self.inner.count()
        freeze = self.plan.fsync_freeze_after
        if (
            freeze is not None
            and self._fsync_image is None
            and self.plan.flushes >= freeze
        ):
            self._fsync_image = (
                self.inner.count(),
                dict(self._state_written),
                self._snapshot_sqlite_file(),
            )
            self.plan.fired.append(
                f"fsync-freeze@flush#{self.plan.flushes}"
                f"(rows={self._fsync_image[0]})"
            )

    def _snapshot_sqlite_file(self) -> Optional[str]:
        """A consistent copy of the inner SQLite database, if file-backed."""
        inner = self.inner
        if not isinstance(inner, SQLiteBackend) or inner.path == ":memory:":
            return None
        import sqlite3

        image_path = inner.path + ".fsync-image"
        image = sqlite3.connect(image_path)
        try:
            inner._conn.backup(image)
            image.commit()
        finally:
            image.close()
        return image_path

    def begin_bulk(self) -> None:
        self._bulk_depth += 1

    def end_bulk(self) -> None:
        if self._bulk_depth > 0:
            self._bulk_depth -= 1
        if self._bulk_depth == 0:
            self.flush()

    # -- reads (staging buffer merged over the inner backend) ----------------

    def get(self, record_id: str) -> ProvenanceRecord:
        self._check_alive()
        position = self._staged_ids.get(record_id)
        if position is not None:
            row, record, cols = self._staged[position]
            if record is None:
                record = self._decode(row)
                self._staged[position] = (row, record, cols)
            return record
        return self.inner.get(record_id)

    def contains(self, record_id: str) -> bool:
        self._check_alive()
        return record_id in self._staged_ids or self.inner.contains(record_id)

    def iter_rows(self) -> Iterator[StoredRow]:
        self._check_alive()
        yield from self.inner.iter_rows()
        for row, __, __c in list(self._staged):
            yield row

    def iter_records(self) -> Iterator[ProvenanceRecord]:
        self._check_alive()
        yield from self.inner.iter_records()
        for row, record, __ in list(self._staged):
            yield record if record is not None else self._decode(row)

    def iter_records_projected(
        self, attributes: FrozenSet[str]
    ) -> Optional[Iterator[ProvenanceRecord]]:
        self._check_alive()
        inner = self.inner.iter_records_projected(attributes)
        if inner is None:
            return None

        def generate() -> Iterator[ProvenanceRecord]:
            yield from inner
            for row, record, __ in list(self._staged):
                yield record if record is not None else self._decode(row)

        return generate()

    def query_records(
        self, query: RecordQuery
    ) -> Optional[List[ProvenanceRecord]]:
        self._check_alive()
        committed = self.inner.query_records(query)
        if committed is None:
            return None
        # Staged rows are visible to queries; filter on the physical
        # facets BEFORE decoding so a corrupt staged row in another trace
        # stays that trace's problem (the confinement invariant).
        for row, record, __ in list(self._staged):
            if query.app_id is not None and row.app_id != query.app_id:
                continue
            if (
                query.record_class is not None
                and row.record_class is not query.record_class
            ):
                continue
            committed.append(
                record if record is not None else self._decode(row)
            )
        return committed

    def count(self) -> int:
        self._check_alive()
        return self.inner.count() + len(self._staged)

    def last_seq(self) -> int:
        # No flush: staged rows are numbered and replayable through this
        # handle's merged change feed, and forcing durability here would
        # shrink the very crash windows this backend exists to create.
        return self.count()

    def changes_since(self, seq: int) -> Iterator[Tuple[int, StoredRow]]:
        self._check_alive()
        base = self.inner.count()
        for position, row in self.inner.changes_since(seq):
            yield position, row
        for offset, (row, __, __c) in enumerate(
            list(self._staged), start=base + 1
        ):
            if offset > seq:
                yield offset, row

    def _decode(self, row: StoredRow) -> ProvenanceRecord:
        if self._decoder is None:
            raise RecordNotFound(
                f"cannot materialize row {row.record_id!r}: no decoder"
            )
        return self._decoder(row)

    # -- auxiliary state -----------------------------------------------------

    def load_state(self, key: str) -> Optional[str]:
        self._check_alive()
        return self.inner.load_state(key)

    def save_state(self, key: str, payload: str) -> None:
        if self._dead():
            return
        self.inner.save_state(key, payload)
        self._state_written[key] = payload

    # -- crash & recovery ----------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def durable_floor(self) -> int:
        """Rows guaranteed to survive a crash right now: the committed
        frontier, capped by the frozen fsync image when one exists."""
        floor = self._durable_count
        if self._fsync_image is not None:
            floor = min(floor, self._fsync_image[0])
        return floor

    def staged_count(self) -> int:
        """Rows acknowledged to the store but not yet committed."""
        return len(self._staged)

    def crash(self) -> None:
        """Kill the process model: staged rows vanish, the inner backend
        is abandoned without a flush.  Idempotent."""
        if self._crashed:
            return
        self._crashed = True
        self._staged.clear()
        self._staged_ids.clear()
        self.inner.abort()

    def recover(self) -> StorageBackend:
        """A fresh backend holding exactly what survived the crash.

        - File-backed SQLite: reopen the database file (committed
          transactions survive; the torn/uncommitted tail rolled back) —
          or, when the fsync image was frozen, reopen the frozen copy,
          modeling commits lost with the page cache.
        - Memory: rebuild from the rows behind the durability frontier
          (memory has no disk, so the frontier *is* its pretend disk).

        Crashes the backend first if the fault fired outside it (e.g. a
        store-level crash point).
        """
        self.crash()
        inner = self.inner
        if isinstance(inner, SQLiteBackend):
            if inner.path == ":memory:":
                raise BackendError(
                    "cannot recover a ':memory:' SQLite database: "
                    "use a file-backed store for crash schedules"
                )
            if self._fsync_image is not None and self._fsync_image[2]:
                recovered_path = inner.path + ".recovered"
                shutil.copyfile(self._fsync_image[2], recovered_path)
                return SQLiteBackend(recovered_path)
            return SQLiteBackend(inner.path)
        if isinstance(inner, MemoryBackend):
            if self._fsync_image is not None:
                surviving, state, __ = self._fsync_image
            else:
                surviving, state = self._durable_count, self._state_written
            recovered = MemoryBackend()
            pairs = zip(inner.iter_rows(), inner.iter_records())
            for __, (row, record) in zip(range(surviving), pairs):
                recovered.append_row(row, record)
            for key, payload in state.items():
                recovered.save_state(key, payload)
            return recovered
        raise BackendError(
            f"no recovery model for inner backend {inner.name!r}"
        )

    # -- lifecycle -----------------------------------------------------------

    def abort(self) -> None:
        self.crash()

    def close(self) -> None:
        if self._dead():
            return
        self.flush()
        self.inner.close()
