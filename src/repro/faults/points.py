"""Named crash points, threaded through the hot paths as no-ops.

A crash point is one line at a place where a real process death would
leave interesting state behind::

    crash_point("store.append.after_commit_before_index")

With no plan active (the default, i.e. production and every ordinary
test) the call is a module-global ``None`` check — nothing is computed,
nothing can raise.  Under :func:`active_plan` the point is reported to
the :class:`~repro.faults.plan.FaultPlan`, which may kill the run with
:class:`~repro.faults.plan.SimulatedCrash`.

The registry of points that exist today (grep for ``crash_point(`` to
re-derive the list):

==========================================  =================================
point                                       site
==========================================  =================================
``store.append.before_commit``              append validated, row not yet
                                            handed to the backend
``store.append.after_commit_before_index``  row in the backend, secondary
                                            indexes/observers not yet run
``store.bulk.enter`` / ``store.bulk.exit``  bulk-section boundaries
``store.flush`` / ``store.close``           durability boundaries
``sqlite.flush.before_commit``              rows inserted, transaction not
                                            yet committed (must roll back)
``sqlite.flush.after_commit``               transaction committed, pending
                                            buffer not yet cleared
``sharded.flush.shard<i>``                  shards < i flushed, shard i and
                                            later still staged
``sharded.append.shard<i>``                 row routed to shard i, not yet
                                            handed to it
``materializer.save.mid_snapshot``          dirty pairs refreshed, snapshot
                                            not yet written
``materializer.restore.mid_restore``        snapshot loaded, catch-up not
                                            yet marked
``evaluator.pool.worker_start``             parent about to fork the sweep
                                            pool
``evaluator.pool.worker_teardown``          parent about to tear the pool
                                            down
==========================================  =================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan

#: the plan crash points report to; ``None`` (the default) disables them.
_ACTIVE: Optional[FaultPlan] = None


def crash_point(point: str) -> None:
    """Report reaching *point* to the active plan (no-op when none)."""
    plan = _ACTIVE
    if plan is not None:
        plan.reached_point(point)


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate *plan* for every crash point in this process.

    Nested activation is rejected: two plans racing for the same points
    would make replay ambiguous.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
