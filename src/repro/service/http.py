"""Stdlib HTTP front end for a :class:`ComplianceRuntime`.

``repro serve`` wraps a runtime in a :class:`ComplianceHTTPServer` — a
``http.server.ThreadingHTTPServer`` speaking the small JSON protocol the
:class:`~repro.service.transport.HTTPTransport` client expects:

====== ============== ====================================================
Method Path           Meaning
====== ============== ====================================================
GET    /health        liveness + store shape
GET    /stats         full runtime counters
GET    /verdicts      the fresh verdict table; optional ``control=``,
                      ``trace=``, ``status=`` filters
GET    /transitions   live verdict deltas after ``after=<index>``
POST   /ingest        recorder batch: ``{"events": [<wire event>...]}``
POST   /sync          one explicit sync/correlate/refresh tick
POST   /snapshot      persist the verdict snapshot now
POST   /shutdown      graceful stop: flush, snapshot, release the port
====== ============== ====================================================

Handler threads speak HTTP/1.1 with keep-alive (every reply carries a
Content-Length), so a streaming client holds one connection — and one
handler thread — for its whole session instead of paying accept/teardown
per batch.  The threads funnel into the runtime, which serializes them
per ingest lane (per shard on a sharded store, one global lock
otherwise); the server adds no state of its own beyond the shutdown
latch.  Errors surface as JSON bodies — ``{"error": ...}`` with a
4xx/5xx code — never as HTML tracebacks.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.capture.events import event_from_wire
from repro.errors import ReproError, ServiceError
from repro.service.runtime import ComplianceRuntime

#: cap on one ingest request body (64 MiB) — a malformed Content-Length
#: must not make a handler thread try to allocate the moon.
_MAX_BODY = 64 * 1024 * 1024


class _RuntimeRequestHandler(BaseHTTPRequestHandler):
    """One JSON request against the server's runtime."""

    # The runtime serializes real work; keep per-request overhead low.
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""
    # Keep-alive + Nagle is a 40ms-per-request trap: the reply goes out
    # as two small writes (header block, body), and with the client's
    # next request waiting on a delayed ACK the whole pipeline stalls.
    # Fresh-connection servers never see this; persistent ones must
    # disable coalescing.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Per-request stderr chatter would swamp benchmark runs; the
        # runtime's stats endpoint is the observability surface.
        pass

    # -- plumbing -------------------------------------------------------------

    @property
    def runtime(self) -> ComplianceRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_json(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > _MAX_BODY:
            self._reply_error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            self._reply_error(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._reply_error(400, "request body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urllib.parse.urlsplit(self.path)
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", params

    # -- verbs ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, params = self._route()
        try:
            if path == "/health":
                self._reply(200, self.runtime.health())
            elif path == "/stats":
                self._reply(200, self.runtime.stats())
            elif path == "/verdicts":
                results = self.runtime.verdicts(
                    control=params.get("control"),
                    trace=params.get("trace"),
                    status=params.get("status"),
                )
                self._reply(
                    200,
                    {"verdicts": [result.to_payload() for result in results]},
                )
            elif path == "/transitions":
                try:
                    after = int(params.get("after", "0"))
                except ValueError:
                    self._reply_error(400, "after= must be an integer")
                    return
                newest, entries = self.runtime.transitions_since(after)
                self._reply(
                    200,
                    {
                        "newest": newest,
                        "transitions": [
                            {
                                "index": index,
                                "verdict": transition.result.to_payload(),
                                "previous": (
                                    transition.previous.value
                                    if transition.previous is not None
                                    else None
                                ),
                                "changed": transition.changed,
                                "description": transition.describe(),
                            }
                            for index, transition in entries
                        ],
                    },
                )
            else:
                self._reply_error(404, f"unknown path {path!r}")
        except ServiceError as exc:
            self._reply_error(409, str(exc))
        except ReproError as exc:
            self._reply_error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, __ = self._route()
        try:
            if path == "/ingest":
                payload = self._read_json()
                if payload is None:
                    return
                try:
                    events = [
                        event_from_wire(entry)
                        for entry in payload.get("events", ())
                    ]
                except (KeyError, ValueError, TypeError) as exc:
                    self._reply_error(400, f"malformed event: {exc}")
                    return
                reply = self.runtime.ingest(events)
                self._reply(200, reply.as_dict())
            elif path == "/sync":
                self._reply(200, self.runtime.sync().as_dict())
            elif path == "/snapshot":
                self.runtime.snapshot()
                self._reply(200, {"saved": True})
            elif path == "/shutdown":
                self._reply(200, {"stopping": True})
                # Drop this keep-alive connection after the reply: the
                # server is stopping and must not strand a client
                # waiting on a socket no handler will read again.
                self.close_connection = True
                self.server.request_shutdown()  # type: ignore[attr-defined]
            else:
                self._reply_error(404, f"unknown path {path!r}")
        except ServiceError as exc:
            self._reply_error(409, str(exc))
        except ReproError as exc:
            self._reply_error(500, str(exc))


class ComplianceHTTPServer(ThreadingHTTPServer):
    """A served :class:`ComplianceRuntime`.

    Args:
        runtime: an **opened** runtime (the server does not call
            :meth:`~ComplianceRuntime.open`; the CLI prints the startup
            report first, then serves).
        host / port: bind address; port 0 picks an ephemeral port —
            read :attr:`server_port` after construction.

    ``serve_forever`` runs until :meth:`request_shutdown` (or a POST to
    ``/shutdown``); the caller then runs the runtime's graceful
    :meth:`~ComplianceRuntime.shutdown`.  Handler threads are daemons, so
    a straggling slow request never wedges process exit.
    """

    daemon_threads = True
    # The runtime outlives request churn; reuse the port across fast
    # restart cycles (tests restart on the same port).
    allow_reuse_address = True

    def __init__(
        self,
        runtime: ComplianceRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _RuntimeRequestHandler)
        self.runtime = runtime
        self._shutdown_requested = threading.Event()

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread (handler threads too).

        ``BaseServer.shutdown`` deadlocks when called from the thread
        running ``serve_forever``; a helper thread posts the stop instead,
        which is also what lets the ``/shutdown`` endpoint work.
        """
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        threading.Thread(
            target=self.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    def serve_until_shutdown(self) -> None:
        """``serve_forever`` + graceful runtime shutdown, as one call."""
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            self.runtime.shutdown()
