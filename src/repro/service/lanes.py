"""Per-shard ingest lanes for the sharded service runtime.

PR 6 sharded the *store*: :class:`~repro.store.backends.sharded.ShardedBackend`
routes each trace's rows to a child backend by a stable CRC32 hash of its
APPID, and per-shard file locks already let independent processes append
to different shards in parallel.  The service runtime, however, still
serialized every ingest on one lock, so served ingest throughput stayed
flat (or dropped) as clients were added.

An :class:`IngestLane` is the runtime-side mirror of one shard: it owns a
shard-scoped store handle, its own recorder pipeline (typing + dedup),
and its own incremental correlation, all guarded by a per-lane lock.
The runtime routes events to lanes with the same APPID hash the backend
uses, so ingest calls for traces on different shards never touch shared
state and proceed genuinely in parallel.  Cross-shard state — the
materializer, the verdict table, snapshots — stays behind the runtime's
global lock, which folds lane output in through the store's change feed.

Lane ownership rules (see EXTENDING.md for the operator-facing version):

- a lane's store handle, recorder, analytics, and pending-correlation
  set are touched only while holding ``lane.lock``;
- ``lane.commits`` is bumped by the lane-store observer on every
  append/fold and read without the lock (a single int update under the
  GIL) — it is the lane's contribution to the runtime's read-cache key;
- lane locks nest *inside* the runtime's global lock (global → lane),
  never the reverse: the lane ingest path takes only its own lock, and
  the global fold/snapshot paths take the global lock first.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.events import ApplicationEvent
from repro.capture.recorder import RecorderClient
from repro.faults.points import crash_point
from repro.ids import IdFactory
from repro.model.records import RelationRecord
from repro.store.store import ProvenanceStore


@dataclass
class LaneResult:
    """Per-batch deltas one lane contributes to an ingest reply."""

    recorded: int = 0
    duplicates: int = 0
    dropped_irrelevant: int = 0
    dropped_unmapped: int = 0
    correlated: int = 0
    #: per-event ``(recorded, drop reason)`` in the lane batch's order.
    dispositions: List[Tuple[bool, Optional[str]]] = field(
        default_factory=list
    )


class IngestLane:
    """One shard's ingest pipeline: recorder + correlation under one lock.

    Args:
        index: the shard this lane mirrors.
        store: shard-scoped store handle.  In sharded mode this is a
            dedicated :class:`ProvenanceStore` over the shard's backend
            (a forked SQLite handle or the shared memory child); in the
            single-lane degenerate case it is the runtime's global store.
        lock: the lane lock.  A fresh ``threading.Lock`` per lane in
            sharded mode; the runtime's global ``RLock`` in single-lane
            mode so the old fully-serialized semantics are preserved
            exactly (re-entrancy keeps nested global→lane acquisition
            legal).
        mapping: event mapping; ``None`` leaves the lane read-only.
        correlation_rules: rules run incrementally over traces this lane
            touched; empty disables correlation.
        rel_ids: the runtime's *shared* relation-id factory.  ``next()``
            is GIL-atomic, so lanes mint globally unique REL ids without
            any cross-lane locking.
        owns_store: whether the lane owns (and must close + flush) its
            store handle — True for forked SQLite handles only.
        crash_tag: fault-injection point fired at each batch entry, named
            like the sharded backend's own per-shard append points so the
            chaos harness can crash a specific lane.
    """

    def __init__(
        self,
        index: int,
        store: ProvenanceStore,
        lock,
        mapping=None,
        correlation_rules: Sequence = (),
        rel_ids: Optional[IdFactory] = None,
        owns_store: bool = False,
        crash_tag: Optional[str] = None,
    ) -> None:
        self.index = index
        self.store = store
        self.lock = lock if lock is not None else threading.Lock()
        self.owns_store = owns_store
        self.crash_tag = crash_tag
        self.recorder = (
            RecorderClient(store, mapping) if mapping is not None else None
        )
        self.analytics: Optional[CorrelationAnalytics] = None
        if correlation_rules:
            # track_edges: the lane lives for the whole service session,
            # so the existing-edge set is maintained by observer instead
            # of re-scanned from the store on every batch.
            self.analytics = CorrelationAnalytics(
                store, store.model, ids=rel_ids, track_edges=True
            )
            for rule in correlation_rules:
                self.analytics.add_rule(rule)
        #: traces with new non-relation rows since correlation last ran.
        self._pending: Dict[str, None] = {}
        #: monotonic append/fold counter (read lock-free by cache keys).
        self.commits = 0
        #: counters surfaced per-lane by ``/stats`` and ``store-stats``.
        self.events_routed = 0
        self.batches = 0
        self.correlation_batches = 0
        self.correlated_rows = 0
        store.subscribe(self._on_append)

    # -- store observer ------------------------------------------------------

    def _on_append(self, record) -> None:
        self.commits += 1
        # Relation rows are correlation *products*; re-correlating their
        # traces every batch would never converge.  Everything else marks
        # its trace for the next correlation pass.
        if not isinstance(record, RelationRecord):
            self._pending.setdefault(record.app_id)

    # -- pipeline (caller holds ``self.lock``) -------------------------------

    def ingest(self, events: Sequence[ApplicationEvent]) -> LaneResult:
        """Run one routed batch through this lane's pipeline."""
        if self.crash_tag is not None:
            # Lane appends go through the lane handle, not the sharded
            # backend's own append path, so its per-shard crash points
            # would never fire; re-issue them here, before any append of
            # the batch lands (a crashed batch is all-or-nothing and a
            # re-send after reopen dedups cleanly).
            crash_point(self.crash_tag)
        stats = self.recorder.stats
        before = (
            stats.recorded,
            stats.duplicates,
            stats.dropped_irrelevant,
            stats.dropped_unmapped,
        )
        envelopes = self.recorder.process_all(events)
        correlated = self.correlate()
        if self.owns_store:
            # Forked handles buffer appends; commit the batch so the
            # global view (and other processes) can fold it immediately.
            self.store.flush()
        self.events_routed += len(events)
        self.batches += 1
        return LaneResult(
            recorded=stats.recorded - before[0],
            duplicates=stats.duplicates - before[1],
            dropped_irrelevant=stats.dropped_irrelevant - before[2],
            dropped_unmapped=stats.dropped_unmapped - before[3],
            correlated=correlated,
            dispositions=[
                (envelope.recorded, envelope.dropped_reason)
                for envelope in envelopes
            ],
        )

    def correlate(self) -> int:
        """One correlation pass over traces touched since the last one."""
        if self.analytics is None or not self._pending:
            self._pending.clear()
            return 0
        touched = list(self._pending)
        self._pending.clear()
        created = self.analytics.run(app_ids=touched)
        self.correlation_batches += 1
        self.correlated_rows += len(created)
        return len(created)

    def sync(self) -> int:
        """Fold rows other handles appended to this lane's shard."""
        return self.store.sync()

    # -- observability -------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def counters(self) -> Dict:
        """The per-lane counter payload (stats endpoint, aux state)."""
        return {
            "lane": self.index,
            "events_routed": self.events_routed,
            "batches": self.batches,
            "dedup_hits": (
                self.recorder.stats.duplicates
                if self.recorder is not None
                else 0
            ),
            "correlation_batches": self.correlation_batches,
            "correlated_rows": self.correlated_rows,
            "commits": self.commits,
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the lane's store handle when the lane owns it."""
        if self.owns_store:
            self.store.close()
