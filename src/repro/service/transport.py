"""Runtime transports: how a recorder client reaches a ComplianceRuntime.

The recorder pipeline (§II.A) is split across a wire boundary: relevance
filtering and sensitive-data scrubbing stay *client-side* (scrubbed fields
must never leave the emitting system), while typing per the data model,
duplicate suppression, and correlation run *server-side*, where the
runtime owns the store and the mapping.  A transport carries the filtered,
scrubbed events across that boundary and brings the server's dispositions
back:

- :class:`InProcessTransport` — the degenerate wire: direct method calls
  into a runtime living in the same process (embedding, tests),
- :class:`HTTPTransport` — stdlib ``http.client`` JSON calls against a
  ``repro serve`` endpoint over one persistent keep-alive connection, so
  N recorder processes on N machines can stream into one served runtime
  without paying TCP setup per batch.

Both speak :class:`IngestReply`, the per-batch disposition summary a
:class:`~repro.capture.recorder.RecorderClient` folds into its stats.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.capture.events import ApplicationEvent, event_to_wire
from repro.errors import ServiceError
from repro.store.cursor import Cursor, cursor_from_wire, cursor_to_wire

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.runtime import ComplianceRuntime


class TransportError(ServiceError):
    """A runtime transport could not complete a call."""


@dataclass
class IngestReply:
    """What the runtime did with one shipped event batch.

    ``dispositions`` has one ``(recorded, reason)`` entry per event sent,
    in order, so a client can reconstruct faithful per-event envelopes;
    the counters aggregate them; ``last_seq`` is the store's change-feed
    position after the batch — the checkpoint an incremental consumer
    resumes from; ``correlated`` counts relation rows the runtime derived
    from the batch.
    """

    recorded: int = 0
    duplicates: int = 0
    dropped_irrelevant: int = 0
    dropped_unmapped: int = 0
    correlated: int = 0
    dispositions: List[Tuple[bool, str]] = field(default_factory=list)
    last_seq: Cursor = 0

    def as_dict(self) -> Dict:
        return {
            "recorded": self.recorded,
            "duplicates": self.duplicates,
            "dropped_irrelevant": self.dropped_irrelevant,
            "dropped_unmapped": self.dropped_unmapped,
            "correlated": self.correlated,
            "dispositions": [
                {"recorded": recorded, "reason": reason}
                for recorded, reason in self.dispositions
            ],
            "last_seq": cursor_to_wire(self.last_seq),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "IngestReply":
        return cls(
            recorded=int(payload.get("recorded", 0)),
            duplicates=int(payload.get("duplicates", 0)),
            dropped_irrelevant=int(payload.get("dropped_irrelevant", 0)),
            dropped_unmapped=int(payload.get("dropped_unmapped", 0)),
            correlated=int(payload.get("correlated", 0)),
            dispositions=[
                (bool(entry["recorded"]), str(entry.get("reason", "")))
                for entry in payload.get("dispositions", ())
            ],
            last_seq=cursor_from_wire(payload.get("last_seq", 0)),
        )


class InProcessTransport:
    """Direct calls into a runtime in the same process."""

    def __init__(self, runtime: "ComplianceRuntime") -> None:
        self.runtime = runtime

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        return self.runtime.ingest(events)

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict]:
        return [
            result.to_payload()
            for result in self.runtime.verdicts(
                control=control, trace=trace, status=status
            )
        ]

    def stats(self) -> Dict:
        return self.runtime.stats()

    def sync(self) -> Dict:
        return self.runtime.sync().as_dict()

    def snapshot(self) -> Dict:
        self.runtime.snapshot()
        return {"saved": True}

    def health(self) -> Dict:
        return self.runtime.health()

    def close(self) -> None:
        """Nothing to release; the runtime's owner shuts it down."""


class HTTPTransport:
    """JSON-over-HTTP calls against a ``repro serve`` endpoint.

    Stdlib only (``http.client``), over one **persistent keep-alive
    connection**: a recorder streaming thousands of batches pays TCP
    (and slow-start) once, not per call, so the serve bench measures the
    runtime rather than connection setup.  If the server idles the kept
    socket out between calls, the next call transparently retries once
    on a fresh connection — only when the failure happened on a *reused*
    socket before a response arrived, so a request is never knowingly
    sent twice (and the runtime's dedup absorbs the unknowable case).

    One connection means one in-flight request: a transport instance is
    not thread-safe.  Give each streaming thread/process its own (they
    are cheap — the socket opens lazily on first use).

    Args:
        base_url: e.g. ``http://127.0.0.1:8787`` (trailing slash ok).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", "https"):
            raise TransportError(
                f"unsupported endpoint scheme {parsed.scheme!r} "
                f"in {base_url!r}"
            )
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._path_prefix = parsed.path.rstrip("/")
        self._conn: Optional[http.client.HTTPConnection] = None
        self._fresh = False

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = factory(self._netloc, timeout=self.timeout)
            self._fresh = True
        return self._conn

    def _reset(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._conn = None

    def _call(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        url = f"{self.base_url}{path}"
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"}
        while True:
            conn = self._connect()
            reused = not self._fresh
            try:
                if conn.sock is None:
                    conn.connect()
                    # Small request/reply bodies on a persistent socket
                    # hit the Nagle + delayed-ACK stall (~40ms/call);
                    # a batching transport coalesces at the JSON layer,
                    # not in the kernel.
                    conn.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                conn.request(
                    method,
                    f"{self._path_prefix}{path}" or "/",
                    body=body,
                    headers=headers,
                )
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError) as exc:
                self._reset()
                if reused:
                    # The server closed the idle kept-alive socket; the
                    # request cannot have been answered, so one retry on
                    # a fresh connection is safe.
                    continue
                raise TransportError(
                    f"{method} {url} unreachable: {exc}"
                ) from exc
            self._fresh = False
            if response.will_close:
                self._reset()
            if response.status >= 400:
                detail = raw.decode("utf-8", "replace")[:200]
                raise TransportError(
                    f"{method} {url} failed: {response.status} {detail}"
                )
            try:
                return json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                raise TransportError(
                    f"{method} {url} returned non-JSON body"
                ) from exc

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        reply = self._call(
            "POST",
            "/ingest",
            {"events": [event_to_wire(event) for event in events]},
        )
        return IngestReply.from_dict(reply)

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict]:
        params = {
            key: value
            for key, value in (
                ("control", control), ("trace", trace), ("status", status)
            )
            if value is not None
        }
        query = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self._call("GET", f"/verdicts{query}")["verdicts"]

    def stats(self) -> Dict:
        return self._call("GET", "/stats")

    def sync(self) -> Dict:
        return self._call("POST", "/sync")

    def snapshot(self) -> Dict:
        return self._call("POST", "/snapshot")

    def health(self) -> Dict:
        return self._call("GET", "/health")

    def shutdown(self) -> Dict:
        """Ask the server to stop gracefully (flush + snapshot)."""
        reply = self._call("POST", "/shutdown")
        # The server is going away; don't keep a socket to it.
        self._reset()
        return reply

    def close(self) -> None:
        """Drop the persistent connection (reopens lazily if reused)."""
        self._reset()
