"""Runtime transports: how a recorder client reaches a ComplianceRuntime.

The recorder pipeline (§II.A) is split across a wire boundary: relevance
filtering and sensitive-data scrubbing stay *client-side* (scrubbed fields
must never leave the emitting system), while typing per the data model,
duplicate suppression, and correlation run *server-side*, where the
runtime owns the store and the mapping.  A transport carries the filtered,
scrubbed events across that boundary and brings the server's dispositions
back:

- :class:`InProcessTransport` — the degenerate wire: direct method calls
  into a runtime living in the same process (embedding, tests),
- :class:`HTTPTransport` — stdlib ``urllib`` JSON calls against a
  ``repro serve`` endpoint, so N recorder processes on N machines can
  stream into one served runtime.

Both speak :class:`IngestReply`, the per-batch disposition summary a
:class:`~repro.capture.recorder.RecorderClient` folds into its stats.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.capture.events import ApplicationEvent, event_to_wire
from repro.errors import ServiceError
from repro.store.cursor import Cursor, cursor_from_wire, cursor_to_wire

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.runtime import ComplianceRuntime


class TransportError(ServiceError):
    """A runtime transport could not complete a call."""


@dataclass
class IngestReply:
    """What the runtime did with one shipped event batch.

    ``dispositions`` has one ``(recorded, reason)`` entry per event sent,
    in order, so a client can reconstruct faithful per-event envelopes;
    the counters aggregate them; ``last_seq`` is the store's change-feed
    position after the batch — the checkpoint an incremental consumer
    resumes from; ``correlated`` counts relation rows the runtime derived
    from the batch.
    """

    recorded: int = 0
    duplicates: int = 0
    dropped_irrelevant: int = 0
    dropped_unmapped: int = 0
    correlated: int = 0
    dispositions: List[Tuple[bool, str]] = field(default_factory=list)
    last_seq: Cursor = 0

    def as_dict(self) -> Dict:
        return {
            "recorded": self.recorded,
            "duplicates": self.duplicates,
            "dropped_irrelevant": self.dropped_irrelevant,
            "dropped_unmapped": self.dropped_unmapped,
            "correlated": self.correlated,
            "dispositions": [
                {"recorded": recorded, "reason": reason}
                for recorded, reason in self.dispositions
            ],
            "last_seq": cursor_to_wire(self.last_seq),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "IngestReply":
        return cls(
            recorded=int(payload.get("recorded", 0)),
            duplicates=int(payload.get("duplicates", 0)),
            dropped_irrelevant=int(payload.get("dropped_irrelevant", 0)),
            dropped_unmapped=int(payload.get("dropped_unmapped", 0)),
            correlated=int(payload.get("correlated", 0)),
            dispositions=[
                (bool(entry["recorded"]), str(entry.get("reason", "")))
                for entry in payload.get("dispositions", ())
            ],
            last_seq=cursor_from_wire(payload.get("last_seq", 0)),
        )


class InProcessTransport:
    """Direct calls into a runtime in the same process."""

    def __init__(self, runtime: "ComplianceRuntime") -> None:
        self.runtime = runtime

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        return self.runtime.ingest(events)

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict]:
        return [
            result.to_payload()
            for result in self.runtime.verdicts(
                control=control, trace=trace, status=status
            )
        ]

    def stats(self) -> Dict:
        return self.runtime.stats()

    def sync(self) -> Dict:
        return self.runtime.sync().as_dict()

    def snapshot(self) -> Dict:
        self.runtime.snapshot()
        return {"saved": True}

    def health(self) -> Dict:
        return self.runtime.health()

    def close(self) -> None:
        """Nothing to release; the runtime's owner shuts it down."""


class HTTPTransport:
    """JSON-over-HTTP calls against a ``repro serve`` endpoint.

    Stdlib only (``urllib``); one short-lived request per call, so a
    transport object is safe to build once per recorder process and use
    for its whole stream.

    Args:
        base_url: e.g. ``http://127.0.0.1:8787`` (trailing slash ok).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        url = f"{self.base_url}{path}"
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")[:200]
            raise TransportError(
                f"{method} {url} failed: {exc.code} {detail}"
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(f"{method} {url} unreachable: {exc}") from exc
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise TransportError(
                f"{method} {url} returned non-JSON body"
            ) from exc

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        reply = self._call(
            "POST",
            "/ingest",
            {"events": [event_to_wire(event) for event in events]},
        )
        return IngestReply.from_dict(reply)

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[Dict]:
        params = {
            key: value
            for key, value in (
                ("control", control), ("trace", trace), ("status", status)
            )
            if value is not None
        }
        query = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self._call("GET", f"/verdicts{query}")["verdicts"]

    def stats(self) -> Dict:
        return self._call("GET", "/stats")

    def sync(self) -> Dict:
        return self._call("POST", "/sync")

    def snapshot(self) -> Dict:
        return self._call("POST", "/snapshot")

    def health(self) -> Dict:
        return self._call("GET", "/health")

    def shutdown(self) -> Dict:
        """Ask the server to stop gracefully (flush + snapshot)."""
        return self._call("POST", "/shutdown")

    def close(self) -> None:
        """Connections are per-request; nothing is held open."""
