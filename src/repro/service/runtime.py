"""The long-lived compliance service core.

Every entry point the repo grew so far — ``simulate``/``check`` batch
runs, the ``watch`` poll loop, deployed controls — was an arrangement of
the same four parts: a :class:`~repro.store.store.ProvenanceStore`, a
server-side recorder pipeline, correlation analytics, and the
:class:`~repro.controls.materializer.VerdictMaterializer` behind a
:class:`~repro.controls.evaluator.ComplianceEvaluator`.  The
:class:`ComplianceRuntime` makes that engine explicit: one thread-safe
object that owns all four and exposes a small session API —

- :meth:`ingest` — run event batches through the recorder pipeline
  (typing, dedup) plus incremental correlation,
- :meth:`sync` — fold in rows *other processes* appended to the shared
  backend (the sharded multi-writer path), correlate the touched traces,
  and refresh the affected verdicts,
- :meth:`verdicts` — the materialized (control, trace) table, refreshed
  and read in canonical sweep order, byte-identical to a cold sweep,
- :meth:`stats` / :meth:`health` — observability,
- :meth:`snapshot` — persist the verdict table + feed cursor so a
  restarted runtime resumes from its cursor instead of re-evaluating
  clean traces,
- :meth:`poll_loop` / :meth:`start_background` — the continuous
  evaluation loop, as a caller-driven loop (``watch`` is a thin client
  of it) or a daemon thread behind a served runtime.

Compliance here is an always-on monitoring service over event streams
(Governatori, arXiv 1403.6865), not an offline audit: recorder clients
stream events in over a transport (:mod:`repro.service.transport`) while
readers query verdicts that the background loop keeps fresh.  The HTTP
front end lives in :mod:`repro.service.http`; ``repro serve`` wires both.

Thread safety and the sharded runtime: over a sharded store the runtime
splits into per-shard **ingest lanes** (:mod:`repro.service.lanes`) —
each lane owns its shard's recorder pipeline, dedup state, and
incremental correlation under its own lock, and events route to lanes by
the same stable APPID hash the backend uses — so concurrent ``ingest``
calls for different shards proceed in parallel.  The global re-entrant
lock fences only cross-shard state: materializer refreshes, snapshots,
shutdown, and the vector-cursor sync that folds lane output into the
global view.  Hot reads (``verdicts``) are served from a read cache
keyed by the materializer's transition epoch plus every lane's commit
counter, so a quiescent read never takes a lock at all.  Over an
unsharded store there is one lane sharing the global lock and behavior
is exactly the pre-lane, fully serialized runtime.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.capture.events import ApplicationEvent
from repro.capture.recorder import RecorderClient, RecorderStats
from repro.controls.control import InternalControl
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.materializer import (
    TransitionListener,
    VerdictTransition,
)
from repro.controls.status import ComplianceResult
from repro.errors import ServiceError
from repro.ids import IdFactory
from repro.service.lanes import IngestLane
from repro.service.transport import IngestReply
from repro.store.backends.memory import MemoryBackend
from repro.store.backends.sharded import ShardedBackend
from repro.store.cursor import cursor_to_wire
from repro.store.store import ProvenanceStore

#: id prefix correlation analytics mint relation records under.
_RELATION_PREFIX = "REL"

#: backend aux-state key the per-lane ingest counters persist under
#: (read offline by ``repro store-stats``).
LANE_STATS_KEY = "runtime:lane-stats"


@dataclass(frozen=True)
class StartupReport:
    """What :meth:`ComplianceRuntime.open` did.

    ``restored`` — whether a persisted verdict snapshot was adopted;
    ``evaluated`` — (control, trace) pairs the startup sweep actually
    re-evaluated (0 when the snapshot covered the whole store — the
    resume-from-cursor guarantee); ``traces`` / ``last_seq`` — store shape
    at startup, for banners.
    """

    restored: bool
    evaluated: int
    traces: int
    last_seq: object


@dataclass(frozen=True)
class SyncOutcome:
    """One continuous-evaluation tick: sync → correlate → refresh."""

    new_rows: int
    correlated: int
    refreshed: int
    last_seq: object

    def as_dict(self) -> Dict:
        return {
            "new_rows": self.new_rows,
            "correlated": self.correlated,
            "refreshed": self.refreshed,
            "last_seq": cursor_to_wire(self.last_seq),
        }


class ComplianceRuntime:
    """Owns the store, controls, and materializer behind a session API.

    Args:
        store: the provenance store (usually over a durable backend).
        xom / vocabulary / controls / observable_types / execution_mode:
            the evaluation stack, exactly as
            :class:`~repro.controls.evaluator.ComplianceEvaluator` takes
            it; *controls* is the set served and kept fresh.
        mapping: event mapping for :meth:`ingest`; ``None`` makes the
            runtime read-only over the stream (``watch`` style).
        correlation_rules: rules run incrementally over traces touched by
            ingest/sync; empty disables correlation (e.g. when an
            upstream pipeline owns it).
        workload_name: label for banners and ``/health``.
        owns_store: close the store on :meth:`shutdown` (servers built
            from a CLI own theirs; embedded runtimes usually do not).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        xom,
        vocabulary,
        controls: Sequence[InternalControl],
        observable_types: Optional[Set[str]] = None,
        execution_mode: str = "compiled",
        mapping=None,
        correlation_rules: Sequence = (),
        workload_name: str = "",
        owns_store: bool = False,
        transition_backlog: int = 1024,
    ) -> None:
        self.store = store
        self.controls = list(controls)
        self.workload_name = workload_name
        self.owns_store = owns_store
        self._lock = threading.RLock()
        self.evaluator = ComplianceEvaluator(
            store, xom, vocabulary,
            observable_types=observable_types,
            execution_mode=execution_mode,
        )
        materializer = self.evaluator.materializer
        if materializer is None:
            raise ServiceError(
                "ComplianceRuntime requires an incremental evaluator "
                "(share_contexts and incremental enabled)"
            )
        self.materializer = materializer
        self._mapping = mapping
        self._correlation_rules: Sequence = list(correlation_rules)
        #: shared relation-id factory; ``next()`` is GIL-atomic, so lanes
        #: mint globally unique REL ids without cross-lane locking.
        self._rel_ids = None  # seeded and shared out in :meth:`open`
        #: per-shard ingest lanes (one lane over the global store when
        #: the backend is unsharded or its shards cannot fork handles).
        self._lanes: List[IngestLane] = []
        self._sharded = False
        # Live transition feed (ring buffer, monotonically indexed).
        self._transitions: Deque[Tuple[int, VerdictTransition]] = deque(
            maxlen=transition_backlog
        )
        self._transitions_lock = threading.Lock()
        self._transition_seq = 0
        #: verdict read cache: ((materializer epoch, lane commit vector),
        #: results).  Written only under the global lock; read lock-free.
        self._verdict_cache: Optional[Tuple[tuple, List]] = None
        self._opened = False
        self._closed = False
        # Background refresh loop.
        self._background: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.background_interval: Optional[float] = None
        #: counters surfaced by :meth:`stats` (small dedicated lock: the
        #: sharded ingest path bumps them outside the global lock).
        self._counter_lock = threading.Lock()
        self.polls = 0
        self.ingest_batches = 0
        self.ingest_events = 0
        self.correlated_total = 0
        self.snapshots_saved = 0
        self.verdict_cache_hits = 0
        self.verdict_cache_misses = 0

    @property
    def recorder(self) -> Optional[RecorderClient]:
        """The single-lane recorder (None before open / when sharded).

        Sharded runtimes have one recorder per lane; aggregate stats are
        in :meth:`stats` under ``"recorder"``.
        """
        if len(self._lanes) == 1:
            return self._lanes[0].recorder
        return None

    @property
    def sharded(self) -> bool:
        """Whether ingest runs through parallel per-shard lanes."""
        return self._sharded

    @property
    def lane_count(self) -> int:
        return len(self._lanes)

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> StartupReport:
        """Register the controls, adopt any persisted snapshot, and run
        the startup sweep.

        After ``open`` the verdict table is current for every trace in
        the store; the report says how much work that took.  With a
        matching snapshot on the backend only traces appended to while
        the runtime was down re-evaluate — a restarted server resumes
        from its cursor, never from zero.
        """
        with self._lock:
            if self._opened:
                raise ServiceError("runtime is already open")
            self._opened = True
            self._seed_relation_ids()
            self._build_lanes()
            for control in self.controls:
                self.materializer.register(control)
            restored = self.materializer.restore()
            before = self.materializer.refreshes
            self.evaluator.run(self.controls)
            evaluated = self.materializer.refreshes - before
            # Subscribe after the startup sweep: the live feed carries
            # changes, not the initial materialization (watch semantics).
            self.materializer.subscribe(self._on_transition)
            return StartupReport(
                restored=restored,
                evaluated=evaluated,
                traces=len(self.store.app_ids()),
                last_seq=self.store.last_seq(),
            )

    def _seed_relation_ids(self) -> None:
        """Continue the REL<i> id sequence past what is already stored.

        Correlation over a reopened store must not restart its id counter
        at 1 — those ids exist and appends would raise.
        """
        self._rel_ids = IdFactory()
        if not self._correlation_rules:
            return
        highest = 0
        for row in self.store.rows():
            record_id = row.record_id
            if record_id.startswith(_RELATION_PREFIX):
                suffix = record_id[len(_RELATION_PREFIX):]
                if suffix.isdigit():
                    highest = max(highest, int(suffix))
        if highest:
            self._rel_ids.seed(_RELATION_PREFIX, highest + 1)

    def _build_lanes(self) -> None:
        """Mirror the store's shard layout with per-shard ingest lanes.

        Sharded mode needs an independent store handle per shard — a
        forked SQLite connection over the shard file, or the shard's
        shared memory child (safe under per-lane locks because lanes
        never touch each other's children).  When any shard cannot
        provide one (e.g. ``:memory:`` SQLite children), the runtime
        degrades to a single lane over the global store guarded by the
        global lock: correct, just not parallel.
        """
        backend = self.store.backend
        handles: Optional[List[Tuple[object, bool]]] = None
        if isinstance(backend, ShardedBackend) and backend.shard_count() > 1:
            handles = []
            for child in backend.children:
                if isinstance(child, MemoryBackend):
                    handles.append((child, False))
                    continue
                fork = child.fork_handle()
                if fork is None:
                    handles = None
                    break
                handles.append((fork, True))
        if handles is None:
            self._sharded = False
            self._lanes = [
                IngestLane(
                    0,
                    self.store,
                    self._lock,
                    mapping=self._mapping,
                    correlation_rules=self._correlation_rules,
                    rel_ids=self._rel_ids,
                )
            ]
            return
        self._sharded = True
        self._lanes = []
        for index, (handle, owns) in enumerate(handles):
            lane_store = ProvenanceStore(
                model=self.store.model,
                indexed=False,
                indexed_attributes=self.store.indexed_attributes,
                backend=handle,
                fast_codec=self.store.codec is not None,
            )
            self._lanes.append(
                IngestLane(
                    index,
                    lane_store,
                    threading.Lock(),
                    mapping=self._mapping,
                    correlation_rules=self._correlation_rules,
                    rel_ids=self._rel_ids,
                    owns_store=owns,
                    crash_tag="sharded.append.shard%d" % index,
                )
            )

    def subscribe(self, listener: TransitionListener) -> None:
        """Receive every post-startup :class:`VerdictTransition` live."""
        self.materializer.subscribe(listener)

    def shutdown(self) -> None:
        """Graceful stop: drain, snapshot, flush; idempotent.

        Any straggler rows other writers appended are folded in and
        evaluated, then the verdict table + cursor persist to the
        backend, so the next :meth:`open` restores instead of
        re-sweeping.  Closes the store when the runtime owns it.
        """
        if self._closed:
            return
        # Stop (and join) the background loop before flipping the closed
        # flag: an in-flight background sync must not race into the
        # "runtime is not open" guard mid-shutdown.
        self.stop_background()
        self._closed = True
        with self._lock:
            if self._opened:
                self._sync_locked()
                self._save_snapshot_locked()
            self.store.flush()
            for lane in self._lanes:
                lane.close()
            if self.owns_store:
                self.store.close()

    # -- transitions ---------------------------------------------------------

    def _on_transition(self, transition: VerdictTransition) -> None:
        with self._transitions_lock:
            self._transition_seq += 1
            self._transitions.append((self._transition_seq, transition))

    # -- session API ---------------------------------------------------------

    def _lane_for(self, event: ApplicationEvent) -> int:
        # Route by the APPID the *record* will carry ("unattributed" is
        # the mapping's fallback for trace-unaware systems), with the
        # same stable hash the sharded backend uses, so every lane writes
        # only rows its shard owns.
        if not self._sharded:
            return 0
        return self.store.shard_index(event.app_id or "unattributed")

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        """Run one event batch through the server-side recorder pipeline.

        Typing per the data model, duplicate suppression, and incremental
        correlation all happen here; verdict refresh is left to the
        reader / background loop (appends only mark dirty pairs, which is
        what keeps ingest throughput independent of control count).

        On a sharded runtime the batch is partitioned by home shard and
        each partition runs under its lane's lock only — two clients
        streaming different traces never serialize on each other.
        """
        if self._mapping is None:
            raise ServiceError(
                "this runtime has no event mapping; ingestion is disabled"
            )
        self._require_open()
        if not self._sharded:
            # Single-lane runtimes keep the pre-lane contract: the whole
            # batch (and its reply's cursor) is one critical section.
            with self._lock:
                return self._ingest_routed(events)
        return self._ingest_routed(events)

    def _ingest_routed(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        groups: Dict[int, List[int]] = {}
        for position, event in enumerate(events):
            groups.setdefault(self._lane_for(event), []).append(position)
        dispositions: List[Optional[Tuple[bool, Optional[str]]]] = (
            [None] * len(events)
        )
        recorded = duplicates = 0
        dropped_irrelevant = dropped_unmapped = correlated = 0
        for lane_index in sorted(groups):
            positions = groups[lane_index]
            lane = self._lanes[lane_index]
            batch = [events[position] for position in positions]
            with lane.lock:
                part = lane.ingest(batch)
            recorded += part.recorded
            duplicates += part.duplicates
            dropped_irrelevant += part.dropped_irrelevant
            dropped_unmapped += part.dropped_unmapped
            correlated += part.correlated
            for position, disposition in zip(positions, part.dispositions):
                dispositions[position] = disposition
        with self._counter_lock:
            self.ingest_batches += 1
            self.ingest_events += len(events)
            self.correlated_total += correlated
        if self._sharded:
            # Lane rows are committed but not yet folded into the global
            # handle's cursor; the backend tip is the truthful checkpoint.
            last_seq = self.store.backend.last_seq()
        else:
            last_seq = self.store.last_seq()
        return IngestReply(
            recorded=recorded,
            duplicates=duplicates,
            dropped_irrelevant=dropped_irrelevant,
            dropped_unmapped=dropped_unmapped,
            correlated=correlated,
            dispositions=dispositions,
            last_seq=last_seq,
        )

    def _fold_lanes_locked(self) -> int:
        """Fold every lane (sync + correlate + commit); global lock held.

        Returns relation rows created.  Lane locks nest inside the global
        lock here — the one sanctioned global→lane ordering.
        """
        correlated = 0
        for lane in self._lanes:
            with lane.lock:
                lane.sync()
                correlated += lane.correlate()
                if lane.owns_store:
                    lane.store.flush()
        if correlated:
            with self._counter_lock:
                self.correlated_total += correlated
        return correlated

    def _sync_locked(self) -> SyncOutcome:
        if self._sharded:
            # Lanes first (their appends + correlation products must be
            # committed), then one global fold brings the materializer's
            # dirty tracking current across every shard.
            correlated = self._fold_lanes_locked()
            new_rows = self.store.sync()
        else:
            new_rows = self.store.sync()
            correlated = self._lanes[0].correlate() if new_rows else 0
            if correlated:
                with self._counter_lock:
                    self.correlated_total += correlated
        refreshed = 0
        if new_rows or correlated or self.materializer.dirty_count:
            refreshed = len(self.materializer.refresh())
        return SyncOutcome(
            new_rows=new_rows,
            correlated=correlated,
            refreshed=refreshed,
            last_seq=self.store.last_seq(),
        )

    def sync(self) -> SyncOutcome:
        """One continuous-evaluation tick.

        Folds in rows lanes and other processes appended to the shared
        backend (multi-writer recorders over a sharded store land here),
        correlates the touched traces, and refreshes every dirty
        (control, trace) pair — the generalization of the old ``watch``
        poll body.  On a sharded runtime ``new_rows`` counts every row
        folded into the global view, lane-ingested rows included.
        """
        with self._lock:
            self._require_open()
            return self._sync_locked()

    def _cache_key(self) -> tuple:
        # Epoch FIRST, commits SECOND: both are monotonic and every
        # serving-path epoch bump is preceded by a lane-commit bump, so a
        # torn read can only produce a key that *misses* — never a stale
        # hit.
        epoch = self.materializer.epoch
        return (epoch, tuple(lane.commits for lane in self._lanes))

    def _verdict_results(self) -> List[ComplianceResult]:
        cached = self._verdict_cache
        if cached is not None and cached[0] == self._cache_key():
            with self._counter_lock:
                self.verdict_cache_hits += 1
            return list(cached[1])
        with self._lock:
            self._require_open()
            if self._sharded:
                self._fold_lanes_locked()
                self.store.sync()
            # Snapshot the commit vector after the fold but before the
            # sweep: a lane commit that lands during the sweep bumps a
            # counter past this snapshot and correctly invalidates the
            # entry we are about to store.
            commits = tuple(lane.commits for lane in self._lanes)
            results = self.evaluator.run(self.controls)
            epoch = self.materializer.epoch
            self._verdict_cache = ((epoch, commits), results)
        with self._counter_lock:
            self.verdict_cache_misses += 1
        return list(results)

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[ComplianceResult]:
        """The verdict table, fresh, in canonical (trace, control) order.

        Reads fold pending lane output and drain the dirty pairs first,
        so a served verdict is always what a cold sweep of the store at
        this instant would produce — byte-identical, per the
        materializer's parity guarantee.  Repeat reads of an unchanged
        runtime are served from the read cache without taking any lock.
        The optional filters subset the canonical rows without changing
        their order.
        """
        self._require_open()
        results = self._verdict_results()
        if control is not None:
            results = [r for r in results if r.control_name == control]
        if trace is not None:
            results = [r for r in results if r.trace_id == trace]
        if status is not None:
            results = [r for r in results if r.status.value == status]
        return results

    def transitions_since(
        self, after: int = 0
    ) -> Tuple[int, List[Tuple[int, VerdictTransition]]]:
        """Live transitions with index > *after*; returns (newest, list).

        The backlog is a ring buffer: a reader that falls more than
        ``transition_backlog`` entries behind misses the overwritten
        ones (and can tell, from the gap in indexes).  Reads take only
        the feed's own lock, never the runtime's.
        """
        with self._transitions_lock:
            entries = [
                (index, transition)
                for index, transition in self._transitions
                if index > after
            ]
            return self._transition_seq, entries

    def _stats_locked(self) -> Dict:
        lanes = self._lanes
        if self._sharded:
            last_seq = self.store.backend.last_seq()
            recorder_stats = RecorderStats.aggregate(
                (
                    lane.recorder.stats
                    for lane in lanes
                    if lane.recorder is not None
                ),
                last_seq=last_seq,
            )
            recorder = recorder_stats.as_dict() if self._mapping else None
        else:
            last_seq = self.store.last_seq()
            recorder = (
                lanes[0].recorder.stats.as_dict()
                if lanes and lanes[0].recorder is not None
                else None
            )
        payload = {
            "workload": self.workload_name,
            "traces": len(self.store.app_ids()),
            "rows": len(self.store),
            "shards": self.store.shard_count(),
            "last_seq": cursor_to_wire(last_seq),
            "controls": [control.name for control in self.controls],
            "dirty_pairs": self.materializer.dirty_count,
            "refreshes": self.materializer.refreshes,
            "pending_correlation": sum(
                lane.pending_count for lane in lanes
            ),
            "correlated_rows": self.correlated_total,
            "ingest_batches": self.ingest_batches,
            "ingest_events": self.ingest_events,
            "recorder": recorder,
            "polls": self.polls,
            "snapshots_saved": self.snapshots_saved,
            "background_running": self.background_running,
            "verdict_cache": {
                "hits": self.verdict_cache_hits,
                "misses": self.verdict_cache_misses,
            },
        }
        if self._sharded:
            payload["lanes"] = [lane.counters() for lane in lanes]
        return payload

    def stats(self) -> Dict:
        """Counters for dashboards and the ``/stats`` endpoint.

        Sharded runtimes answer without the global lock — every field is
        either a backend SQL read or a GIL-atomic counter — so stats
        polling never stalls behind a refresh.
        """
        if self._sharded:
            return self._stats_locked()
        with self._lock:
            return self._stats_locked()

    def health(self) -> Dict:
        """Tiny liveness payload for ``/health``."""
        if self._sharded:
            return {
                "status": "ok" if self._opened and not self._closed
                else "stopped",
                "workload": self.workload_name,
                "traces": len(self.store.app_ids()),
                "last_seq": cursor_to_wire(self.store.backend.last_seq()),
            }
        with self._lock:
            return {
                "status": "ok" if self._opened and not self._closed
                else "stopped",
                "workload": self.workload_name,
                "traces": len(self.store.app_ids()),
                "last_seq": cursor_to_wire(self.store.last_seq()),
            }

    def _save_lane_stats_locked(self) -> None:
        if not self._sharded:
            return
        payload = json.dumps(
            {
                "version": 1,
                "lanes": [lane.counters() for lane in self._lanes],
            }
        )
        self.store.save_state(LANE_STATS_KEY, payload)

    def _save_snapshot_locked(self) -> None:
        self.materializer.save()
        self._save_lane_stats_locked()
        self.snapshots_saved += 1

    def snapshot(self) -> None:
        """Refresh what is dirty, then persist the verdict table + cursor.

        After this the backend alone carries everything a restarted
        runtime needs to resume: rows, auxiliary verdict state, the
        change-feed cursor the state is current as of, and (sharded) the
        per-lane ingest counters ``store-stats`` reports offline.
        """
        with self._lock:
            self._require_open()
            if self._sharded:
                # The snapshot cursor must cover lane rows already
                # committed to the shard files, or a restart would
                # re-evaluate traces this snapshot already verdicted.
                self._fold_lanes_locked()
                self.store.sync()
            self._save_snapshot_locked()

    def _require_open(self) -> None:
        if not self._opened or self._closed:
            raise ServiceError("runtime is not open")

    # -- continuous evaluation ----------------------------------------------

    def poll_loop(
        self,
        interval: float,
        once: bool = False,
        max_polls: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_poll: Optional[Callable[[SyncOutcome], None]] = None,
    ) -> int:
        """The caller-driven continuous-evaluation loop; returns polls run.

        Each tick is one :meth:`sync`; *on_poll* sees every outcome
        (``watch`` prints the non-empty ones).  *sleep* is injectable so
        tests drive the loop with a fake clock.  ``KeyboardInterrupt``
        exits cleanly — the loop's owner snapshots afterwards.
        """
        polls = 0
        try:
            while True:
                outcome = self.sync()
                if on_poll is not None:
                    on_poll(outcome)
                polls += 1
                self.polls += 1
                if once:
                    break
                if max_polls is not None and polls >= max_polls:
                    break
                sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return polls

    @property
    def background_running(self) -> bool:
        return self._background is not None and self._background.is_alive()

    def start_background(
        self,
        interval: float = 1.0,
        snapshot_every: int = 0,
    ) -> None:
        """Run the refresh loop in a daemon thread until :meth:`shutdown`.

        Args:
            interval: seconds between ticks (the stop event interrupts a
                pending wait immediately).
            snapshot_every: persist the verdict snapshot every N ticks;
                0 snapshots only at shutdown.
        """
        with self._lock:
            self._require_open()
            if self.background_running:
                raise ServiceError("background refresh is already running")
            self._stop.clear()
            self.background_interval = interval
            self._background = threading.Thread(
                target=self._background_main,
                args=(interval, snapshot_every),
                name="compliance-runtime-refresh",
                daemon=True,
            )
            self._background.start()

    def _background_main(self, interval: float, snapshot_every: int) -> None:
        ticks = 0
        while not self._stop.is_set():
            self.sync()
            self.polls += 1
            ticks += 1
            if snapshot_every and ticks % snapshot_every == 0:
                self.snapshot()
            self._stop.wait(interval)

    def stop_background(self) -> None:
        """Stop the background loop and join it.  Idempotent."""
        self._stop.set()
        thread = self._background
        if thread is not None and thread.is_alive():
            thread.join(timeout=30.0)
        self._background = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        sim,
        workload=None,
        execution_mode: str = "compiled",
        owns_store: bool = False,
        **kwargs,
    ) -> "ComplianceRuntime":
        """Build a runtime over a
        :class:`~repro.processes.workload.SimulationResult`.

        With *workload* (the :class:`~repro.processes.workload.Workload`
        bundle) the runtime also gets the scenario's event mapping and
        correlation rules, enabling ingestion; without it the runtime is
        a read-only continuous evaluator over the store.
        """
        mapping = None
        correlation_rules: Sequence = ()
        if workload is not None:
            mapping = workload.build_mapping(sim.model)
            correlation_rules = workload.correlation_rules()
        return cls(
            store=sim.store,
            xom=sim.xom,
            vocabulary=sim.vocabulary,
            controls=sim.controls,
            observable_types=sim.observable_types,
            execution_mode=execution_mode,
            mapping=mapping,
            correlation_rules=correlation_rules,
            workload_name=sim.workload_name,
            owns_store=owns_store,
            **kwargs,
        )
