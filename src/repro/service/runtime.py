"""The long-lived compliance service core.

Every entry point the repo grew so far — ``simulate``/``check`` batch
runs, the ``watch`` poll loop, deployed controls — was an arrangement of
the same four parts: a :class:`~repro.store.store.ProvenanceStore`, a
server-side recorder pipeline, correlation analytics, and the
:class:`~repro.controls.materializer.VerdictMaterializer` behind a
:class:`~repro.controls.evaluator.ComplianceEvaluator`.  The
:class:`ComplianceRuntime` makes that engine explicit: one thread-safe
object that owns all four and exposes a small session API —

- :meth:`ingest` — run event batches through the recorder pipeline
  (typing, dedup) plus incremental correlation,
- :meth:`sync` — fold in rows *other processes* appended to the shared
  backend (the sharded multi-writer path), correlate the touched traces,
  and refresh the affected verdicts,
- :meth:`verdicts` — the materialized (control, trace) table, refreshed
  and read in canonical sweep order, byte-identical to a cold sweep,
- :meth:`stats` / :meth:`health` — observability,
- :meth:`snapshot` — persist the verdict table + feed cursor so a
  restarted runtime resumes from its cursor instead of re-evaluating
  clean traces,
- :meth:`poll_loop` / :meth:`start_background` — the continuous
  evaluation loop, as a caller-driven loop (``watch`` is a thin client
  of it) or a daemon thread behind a served runtime.

Compliance here is an always-on monitoring service over event streams
(Governatori, arXiv 1403.6865), not an offline audit: recorder clients
stream events in over a transport (:mod:`repro.service.transport`) while
readers query verdicts that the background loop keeps fresh.  The HTTP
front end lives in :mod:`repro.service.http`; ``repro serve`` wires both.

Thread safety: one re-entrant lock serializes every store / materializer
touch.  The store, materializer, and evaluator are single-threaded by
design; the runtime is the one place that may be entered from many
threads (HTTP handler threads, the background refresh loop, the owner).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.capture.correlation import CorrelationAnalytics
from repro.capture.events import ApplicationEvent
from repro.capture.recorder import RecorderClient
from repro.controls.control import InternalControl
from repro.controls.evaluator import ComplianceEvaluator
from repro.controls.materializer import (
    TransitionListener,
    VerdictTransition,
)
from repro.controls.status import ComplianceResult
from repro.errors import ServiceError
from repro.ids import IdFactory
from repro.model.records import RelationRecord
from repro.service.transport import IngestReply
from repro.store.cursor import cursor_to_wire
from repro.store.store import ProvenanceStore

#: id prefix correlation analytics mint relation records under.
_RELATION_PREFIX = "REL"


@dataclass(frozen=True)
class StartupReport:
    """What :meth:`ComplianceRuntime.open` did.

    ``restored`` — whether a persisted verdict snapshot was adopted;
    ``evaluated`` — (control, trace) pairs the startup sweep actually
    re-evaluated (0 when the snapshot covered the whole store — the
    resume-from-cursor guarantee); ``traces`` / ``last_seq`` — store shape
    at startup, for banners.
    """

    restored: bool
    evaluated: int
    traces: int
    last_seq: object


@dataclass(frozen=True)
class SyncOutcome:
    """One continuous-evaluation tick: sync → correlate → refresh."""

    new_rows: int
    correlated: int
    refreshed: int
    last_seq: object

    def as_dict(self) -> Dict:
        return {
            "new_rows": self.new_rows,
            "correlated": self.correlated,
            "refreshed": self.refreshed,
            "last_seq": cursor_to_wire(self.last_seq),
        }


class ComplianceRuntime:
    """Owns the store, controls, and materializer behind a session API.

    Args:
        store: the provenance store (usually over a durable backend).
        xom / vocabulary / controls / observable_types / execution_mode:
            the evaluation stack, exactly as
            :class:`~repro.controls.evaluator.ComplianceEvaluator` takes
            it; *controls* is the set served and kept fresh.
        mapping: event mapping for :meth:`ingest`; ``None`` makes the
            runtime read-only over the stream (``watch`` style).
        correlation_rules: rules run incrementally over traces touched by
            ingest/sync; empty disables correlation (e.g. when an
            upstream pipeline owns it).
        workload_name: label for banners and ``/health``.
        owns_store: close the store on :meth:`shutdown` (servers built
            from a CLI own theirs; embedded runtimes usually do not).
    """

    def __init__(
        self,
        store: ProvenanceStore,
        xom,
        vocabulary,
        controls: Sequence[InternalControl],
        observable_types: Optional[Set[str]] = None,
        execution_mode: str = "compiled",
        mapping=None,
        correlation_rules: Sequence = (),
        workload_name: str = "",
        owns_store: bool = False,
        transition_backlog: int = 1024,
    ) -> None:
        self.store = store
        self.controls = list(controls)
        self.workload_name = workload_name
        self.owns_store = owns_store
        self._lock = threading.RLock()
        self.evaluator = ComplianceEvaluator(
            store, xom, vocabulary,
            observable_types=observable_types,
            execution_mode=execution_mode,
        )
        materializer = self.evaluator.materializer
        if materializer is None:
            raise ServiceError(
                "ComplianceRuntime requires an incremental evaluator "
                "(share_contexts and incremental enabled)"
            )
        self.materializer = materializer
        self.recorder = (
            RecorderClient(store, mapping) if mapping is not None else None
        )
        self._analytics: Optional[CorrelationAnalytics] = None
        if correlation_rules:
            self._analytics = CorrelationAnalytics(store, store.model)
            for rule in correlation_rules:
                self._analytics.add_rule(rule)
        #: traces with new non-relation rows since correlation last ran.
        self._pending_correlation: Dict[str, None] = {}
        self.store.subscribe(self._on_append)
        # Live transition feed (ring buffer, monotonically indexed).
        self._transitions: Deque[Tuple[int, VerdictTransition]] = deque(
            maxlen=transition_backlog
        )
        self._transition_seq = 0
        self._opened = False
        self._closed = False
        # Background refresh loop.
        self._background: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.background_interval: Optional[float] = None
        #: counters surfaced by :meth:`stats`.
        self.polls = 0
        self.ingest_batches = 0
        self.ingest_events = 0
        self.correlated_total = 0
        self.snapshots_saved = 0

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> StartupReport:
        """Register the controls, adopt any persisted snapshot, and run
        the startup sweep.

        After ``open`` the verdict table is current for every trace in
        the store; the report says how much work that took.  With a
        matching snapshot on the backend only traces appended to while
        the runtime was down re-evaluate — a restarted server resumes
        from its cursor, never from zero.
        """
        with self._lock:
            if self._opened:
                raise ServiceError("runtime is already open")
            self._opened = True
            self._seed_relation_ids()
            for control in self.controls:
                self.materializer.register(control)
            restored = self.materializer.restore()
            before = self.materializer.refreshes
            self.evaluator.run(self.controls)
            evaluated = self.materializer.refreshes - before
            # Subscribe after the startup sweep: the live feed carries
            # changes, not the initial materialization (watch semantics).
            self.materializer.subscribe(self._on_transition)
            return StartupReport(
                restored=restored,
                evaluated=evaluated,
                traces=len(self.store.app_ids()),
                last_seq=self.store.last_seq(),
            )

    def _seed_relation_ids(self) -> None:
        """Continue the REL<i> id sequence past what is already stored.

        Correlation over a reopened store must not restart its id counter
        at 1 — those ids exist and appends would raise.
        """
        if self._analytics is None:
            return
        highest = 0
        for row in self.store.rows():
            record_id = row.record_id
            if record_id.startswith(_RELATION_PREFIX):
                suffix = record_id[len(_RELATION_PREFIX):]
                if suffix.isdigit():
                    highest = max(highest, int(suffix))
        if highest:
            ids: IdFactory = self._analytics.ids
            ids.seed(_RELATION_PREFIX, highest + 1)

    def subscribe(self, listener: TransitionListener) -> None:
        """Receive every post-startup :class:`VerdictTransition` live."""
        self.materializer.subscribe(listener)

    def shutdown(self) -> None:
        """Graceful stop: drain, snapshot, flush; idempotent.

        Any straggler rows other writers appended are folded in and
        evaluated, then the verdict table + cursor persist to the
        backend, so the next :meth:`open` restores instead of
        re-sweeping.  Closes the store when the runtime owns it.
        """
        if self._closed:
            return
        # Stop (and join) the background loop before flipping the closed
        # flag: an in-flight background sync must not race into the
        # "runtime is not open" guard mid-shutdown.
        self.stop_background()
        self._closed = True
        with self._lock:
            if self._opened:
                self._sync_locked()
                self._save_snapshot_locked()
            self.store.flush()
            if self.owns_store:
                self.store.close()

    # -- dirty tracking ------------------------------------------------------

    def _on_append(self, record) -> None:
        # Relation rows are correlation *products*; re-correlating their
        # traces every tick would never converge.  Everything else marks
        # its trace for the next incremental correlation pass.
        if not isinstance(record, RelationRecord):
            self._pending_correlation.setdefault(record.app_id)

    def _on_transition(self, transition: VerdictTransition) -> None:
        self._transition_seq += 1
        self._transitions.append((self._transition_seq, transition))

    def _correlate_pending(self) -> int:
        """Run correlation over traces touched since the last pass."""
        if self._analytics is None or not self._pending_correlation:
            self._pending_correlation.clear()
            return 0
        touched = list(self._pending_correlation)
        self._pending_correlation.clear()
        created = self._analytics.run(app_ids=touched)
        self.correlated_total += len(created)
        return len(created)

    # -- session API ---------------------------------------------------------

    def ingest(self, events: Sequence[ApplicationEvent]) -> IngestReply:
        """Run one event batch through the server-side recorder pipeline.

        Typing per the data model, duplicate suppression, and incremental
        correlation all happen here; verdict refresh is left to the
        reader / background loop (appends only mark dirty pairs, which is
        what keeps ingest throughput independent of control count).
        """
        if self.recorder is None:
            raise ServiceError(
                "this runtime has no event mapping; ingestion is disabled"
            )
        with self._lock:
            self._require_open()
            stats = self.recorder.stats
            before = (
                stats.recorded,
                stats.duplicates,
                stats.dropped_irrelevant,
                stats.dropped_unmapped,
            )
            envelopes = self.recorder.process_all(events)
            correlated = self._correlate_pending()
            self.ingest_batches += 1
            self.ingest_events += len(events)
            return IngestReply(
                recorded=stats.recorded - before[0],
                duplicates=stats.duplicates - before[1],
                dropped_irrelevant=stats.dropped_irrelevant - before[2],
                dropped_unmapped=stats.dropped_unmapped - before[3],
                correlated=correlated,
                dispositions=[
                    (envelope.recorded, envelope.dropped_reason)
                    for envelope in envelopes
                ],
                last_seq=self.store.last_seq(),
            )

    def _sync_locked(self) -> SyncOutcome:
        new_rows = self.store.sync()
        correlated = self._correlate_pending() if new_rows else 0
        refreshed = 0
        if new_rows or correlated or self.materializer.dirty_count:
            refreshed = len(self.materializer.refresh())
        return SyncOutcome(
            new_rows=new_rows,
            correlated=correlated,
            refreshed=refreshed,
            last_seq=self.store.last_seq(),
        )

    def sync(self) -> SyncOutcome:
        """One continuous-evaluation tick.

        Folds in rows other handles appended to the shared backend
        (multi-writer recorders over a sharded store land here),
        correlates the touched traces, and refreshes every dirty
        (control, trace) pair — the generalization of the old ``watch``
        poll body.
        """
        with self._lock:
            self._require_open()
            return self._sync_locked()

    def verdicts(
        self,
        control: Optional[str] = None,
        trace: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[ComplianceResult]:
        """The verdict table, fresh, in canonical (trace, control) order.

        Reads drain the dirty pairs first, so a served verdict is always
        what a cold sweep of the store at this instant would produce —
        byte-identical, per the materializer's parity guarantee.  The
        optional filters subset the canonical rows without changing
        their order.
        """
        with self._lock:
            self._require_open()
            results = self.evaluator.run(self.controls)
        if control is not None:
            results = [r for r in results if r.control_name == control]
        if trace is not None:
            results = [r for r in results if r.trace_id == trace]
        if status is not None:
            results = [r for r in results if r.status.value == status]
        return results

    def transitions_since(
        self, after: int = 0
    ) -> Tuple[int, List[Tuple[int, VerdictTransition]]]:
        """Live transitions with index > *after*; returns (newest, list).

        The backlog is a ring buffer: a reader that falls more than
        ``transition_backlog`` entries behind misses the overwritten
        ones (and can tell, from the gap in indexes).
        """
        with self._lock:
            entries = [
                (index, transition)
                for index, transition in self._transitions
                if index > after
            ]
            return self._transition_seq, entries

    def stats(self) -> Dict:
        """Counters for dashboards and the ``/stats`` endpoint."""
        with self._lock:
            recorder = (
                self.recorder.stats.as_dict()
                if self.recorder is not None
                else None
            )
            return {
                "workload": self.workload_name,
                "traces": len(self.store.app_ids()),
                "rows": len(self.store),
                "shards": self.store.shard_count(),
                "last_seq": cursor_to_wire(self.store.last_seq()),
                "controls": [control.name for control in self.controls],
                "dirty_pairs": self.materializer.dirty_count,
                "refreshes": self.materializer.refreshes,
                "pending_correlation": len(self._pending_correlation),
                "correlated_rows": self.correlated_total,
                "ingest_batches": self.ingest_batches,
                "ingest_events": self.ingest_events,
                "recorder": recorder,
                "polls": self.polls,
                "snapshots_saved": self.snapshots_saved,
                "background_running": self.background_running,
            }

    def health(self) -> Dict:
        """Tiny liveness payload for ``/health``."""
        with self._lock:
            return {
                "status": "ok" if self._opened and not self._closed
                else "stopped",
                "workload": self.workload_name,
                "traces": len(self.store.app_ids()),
                "last_seq": cursor_to_wire(self.store.last_seq()),
            }

    def _save_snapshot_locked(self) -> None:
        self.materializer.save()
        self.snapshots_saved += 1

    def snapshot(self) -> None:
        """Refresh what is dirty, then persist the verdict table + cursor.

        After this the backend alone carries everything a restarted
        runtime needs to resume: rows, auxiliary verdict state, and the
        change-feed cursor the state is current as of.
        """
        with self._lock:
            self._require_open()
            self._save_snapshot_locked()

    def _require_open(self) -> None:
        if not self._opened or self._closed:
            raise ServiceError("runtime is not open")

    # -- continuous evaluation ----------------------------------------------

    def poll_loop(
        self,
        interval: float,
        once: bool = False,
        max_polls: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_poll: Optional[Callable[[SyncOutcome], None]] = None,
    ) -> int:
        """The caller-driven continuous-evaluation loop; returns polls run.

        Each tick is one :meth:`sync`; *on_poll* sees every outcome
        (``watch`` prints the non-empty ones).  *sleep* is injectable so
        tests drive the loop with a fake clock.  ``KeyboardInterrupt``
        exits cleanly — the loop's owner snapshots afterwards.
        """
        polls = 0
        try:
            while True:
                outcome = self.sync()
                if on_poll is not None:
                    on_poll(outcome)
                polls += 1
                self.polls += 1
                if once:
                    break
                if max_polls is not None and polls >= max_polls:
                    break
                sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return polls

    @property
    def background_running(self) -> bool:
        return self._background is not None and self._background.is_alive()

    def start_background(
        self,
        interval: float = 1.0,
        snapshot_every: int = 0,
    ) -> None:
        """Run the refresh loop in a daemon thread until :meth:`shutdown`.

        Args:
            interval: seconds between ticks (the stop event interrupts a
                pending wait immediately).
            snapshot_every: persist the verdict snapshot every N ticks;
                0 snapshots only at shutdown.
        """
        with self._lock:
            self._require_open()
            if self.background_running:
                raise ServiceError("background refresh is already running")
            self._stop.clear()
            self.background_interval = interval
            self._background = threading.Thread(
                target=self._background_main,
                args=(interval, snapshot_every),
                name="compliance-runtime-refresh",
                daemon=True,
            )
            self._background.start()

    def _background_main(self, interval: float, snapshot_every: int) -> None:
        ticks = 0
        while not self._stop.is_set():
            self.sync()
            self.polls += 1
            ticks += 1
            if snapshot_every and ticks % snapshot_every == 0:
                self.snapshot()
            self._stop.wait(interval)

    def stop_background(self) -> None:
        """Stop the background loop and join it.  Idempotent."""
        self._stop.set()
        thread = self._background
        if thread is not None and thread.is_alive():
            thread.join(timeout=30.0)
        self._background = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        sim,
        workload=None,
        execution_mode: str = "compiled",
        owns_store: bool = False,
        **kwargs,
    ) -> "ComplianceRuntime":
        """Build a runtime over a
        :class:`~repro.processes.workload.SimulationResult`.

        With *workload* (the :class:`~repro.processes.workload.Workload`
        bundle) the runtime also gets the scenario's event mapping and
        correlation rules, enabling ingestion; without it the runtime is
        a read-only continuous evaluator over the store.
        """
        mapping = None
        correlation_rules: Sequence = ()
        if workload is not None:
            mapping = workload.build_mapping(sim.model)
            correlation_rules = workload.correlation_rules()
        return cls(
            store=sim.store,
            xom=sim.xom,
            vocabulary=sim.vocabulary,
            controls=sim.controls,
            observable_types=sim.observable_types,
            execution_mode=execution_mode,
            mapping=mapping,
            correlation_rules=correlation_rules,
            workload_name=sim.workload_name,
            owns_store=owns_store,
            **kwargs,
        )
