"""The long-lived compliance service.

:class:`ComplianceRuntime` is the explicit engine behind every evaluation
front end — store + recorder pipeline + correlation + verdict
materializer behind one thread-safe session API.  Over a sharded store
it splits ingest into per-shard :class:`IngestLane` pipelines
(:mod:`repro.service.lanes`) so concurrent writers scale with shards.
:mod:`repro.service.http` serves it over stdlib HTTP (``repro serve``);
:mod:`repro.service.transport` is how recorder clients reach it, in
process or across the wire.
"""

from repro.service.http import ComplianceHTTPServer
from repro.service.lanes import IngestLane, LaneResult
from repro.service.runtime import (
    ComplianceRuntime,
    StartupReport,
    SyncOutcome,
)
from repro.service.transport import (
    HTTPTransport,
    IngestReply,
    InProcessTransport,
    TransportError,
)

__all__ = [
    "ComplianceHTTPServer",
    "ComplianceRuntime",
    "HTTPTransport",
    "IngestLane",
    "IngestReply",
    "InProcessTransport",
    "LaneResult",
    "StartupReport",
    "SyncOutcome",
    "TransportError",
]
