"""Purchase-to-pay workload.

A classic internal-audit scenario exercising numeric thresholds and
cross-artifact consistency, beyond the paper's hiring example:

    create purchase order → (≥ threshold?) manager approval → order goods
    → goods receipt → invoice → payment

Injected violation kinds:

- ``skip_po_approval`` — an above-threshold order is placed unapproved,
- ``self_approval`` — the requester approves their own order,
- ``no_receipt`` — payment happens without a goods receipt,
- ``price_mismatch`` — the invoice amount differs from the order amount.

Controls: approval-over-threshold, segregation of duties, and a three-way
match (order/receipt/invoice) — the latter shows BAL arithmetic and numeric
comparison over the provenance graph.
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.capture.correlation import CorrelationRule, attribute_join
from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.mapping import EventMapping
from repro.controls.control import ControlSeverity
from repro.controls.status import ComplianceStatus
from repro.model.attributes import AttributeSpec
from repro.model.builder import ModelBuilder
from repro.model.records import RecordClass
from repro.model.schema import ProvenanceDataModel
from repro.processes.spec import ActivityStep, ChoiceStep, EndStep, ProcessSpec
from repro.processes.violations import ViolationPlan, has_violation
from repro.processes.workload import ControlSpec, Workload
from repro.store.query import RecordQuery

VIOLATION_KINDS = (
    "skip_po_approval",
    "self_approval",
    "no_receipt",
    "price_mismatch",
)

APPROVAL_THRESHOLD = 1000

_REQUESTERS = ("Ana Bell", "Ben Cole", "Cara Diaz", "Dan Evans", "Eva Fox")
_VENDORS = ("Initech", "Globex", "Umbrella Supply", "Acme Parts")


def build_model() -> ProvenanceDataModel:
    return (
        ModelBuilder("purchase-to-pay")
        .data(
            "purchaseorder",
            "Purchase Order",
            poid=AttributeSpec("poid", verbalized="order ID", required=True),
            amount=int,
            vendor=str,
            requester_email=AttributeSpec(
                "requester_email", verbalized="requester email"
            ),
        )
        .data(
            "poapproval",
            "Order Approval",
            poid=AttributeSpec("poid", verbalized="order ID"),
            status=str,
            approver_email=AttributeSpec(
                "approver_email", verbalized="approver email"
            ),
        )
        .data(
            "goodsreceipt",
            "Goods Receipt",
            poid=AttributeSpec("poid", verbalized="order ID"),
            quantity=int,
        )
        .data(
            "invoice",
            "Invoice",
            poid=AttributeSpec("poid", verbalized="order ID"),
            amount=int,
            vendor=str,
        )
        .data(
            "payment",
            "Payment",
            poid=AttributeSpec("poid", verbalized="order ID"),
            amount=int,
        )
        .resource("person", "Person", name=str, email=str, manager=str)
        .relation("approvalFor", RecordClass.DATA, RecordClass.DATA,
                  label="the approval of")
        .relation("receiptFor", RecordClass.DATA, RecordClass.DATA,
                  label="the receipt of")
        .relation("invoiceFor", RecordClass.DATA, RecordClass.DATA,
                  label="the invoice of")
        .relation("paymentFor", RecordClass.DATA, RecordClass.DATA,
                  label="the payment of")
        .relation("requesterOf", RecordClass.RESOURCE, RecordClass.DATA,
                  label="the requester of")
        .build()
    )


def case_factory(plan: ViolationPlan) -> Callable:
    def factory(index: int, rng: random.Random) -> dict:
        requester = rng.choice(_REQUESTERS)
        slug = requester.lower().replace(" ", ".")
        case = {
            "poid": f"PO{index:04d}",
            "amount": rng.randint(100, 50000),
            "vendor": rng.choice(_VENDORS),
            "requester": requester,
            "requester_email": f"{slug}@acme.com",
            "approver_email": f"manager.{slug}@acme.com",
            "quantity": rng.randint(1, 50),
        }
        plan.apply_to_case(case, rng)
        return case

    return factory


def _event(make_id, source, kind, timestamp, app_id, **payload):
    return ApplicationEvent(
        event_id=make_id(), source=source, kind=kind, timestamp=timestamp,
        app_id=app_id,
        payload={key: str(value) for key, value in payload.items()},
    )


def _emit_order(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.DIRECTORY, "directory.person.registered",
            start, case["app_id"],
            name=case["requester"], email=case["requester_email"],
            manager=case["approver_email"],
        ),
        _event(
            make_id, EventSource.WORKFLOW, "workflow.po.created",
            end, case["app_id"],
            poid=case["poid"], amount=case["amount"],
            vendor=case["vendor"],
            requester_email=case["requester_email"],
        ),
    ]


def _emit_po_approval(case, start, end, make_id) -> List[ApplicationEvent]:
    approver = (
        case["requester_email"]
        if has_violation(case, "self_approval")
        else case["approver_email"]
    )
    return [
        _event(
            make_id, EventSource.WORKFLOW, "workflow.po.approved",
            end, case["app_id"],
            poid=case["poid"], status="approved", approver_email=approver,
        )
    ]


def _emit_receipt(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.DOCUMENT, "document.goods.received",
            end, case["app_id"],
            poid=case["poid"], quantity=case["quantity"],
        )
    ]


def _emit_invoice(case, start, end, make_id) -> List[ApplicationEvent]:
    amount = case["amount"]
    if has_violation(case, "price_mismatch"):
        amount = amount + max(50, amount // 10)
    return [
        _event(
            make_id, EventSource.DATABASE, "database.invoice.posted",
            end, case["app_id"],
            poid=case["poid"], amount=amount, vendor=case["vendor"],
        )
    ]


def _emit_payment(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.DATABASE, "database.payment.executed",
            end, case["app_id"],
            poid=case["poid"], amount=case["amount"],
        )
    ]


def build_spec() -> ProcessSpec:
    def route_approval(case: dict) -> str:
        if case["amount"] < APPROVAL_THRESHOLD:
            return "below_threshold"
        if has_violation(case, "skip_po_approval"):
            return "skipped"
        return "approve"

    def route_receipt(case: dict) -> str:
        return "skip" if has_violation(case, "no_receipt") else "receive"

    spec = ProcessSpec("purchase-to-pay", start="create_order")
    spec.add(ActivityStep(
        name="create_order", performer_role="requester",
        emitter=_emit_order, duration=(300, 3600),
        next_step="approval_gateway",
    ))
    spec.add(ChoiceStep(
        name="approval_gateway", decider=route_approval,
        branches={
            "approve": "approve_order",
            "below_threshold": "receipt_gateway",
            "skipped": "receipt_gateway",
        },
    ))
    spec.add(ActivityStep(
        name="approve_order", performer_role="manager",
        emitter=_emit_po_approval, duration=(3600, 86400),
        next_step="receipt_gateway",
    ))
    spec.add(ChoiceStep(
        name="receipt_gateway", decider=route_receipt,
        branches={"receive": "receive_goods", "skip": "post_invoice"},
    ))
    spec.add(ActivityStep(
        name="receive_goods", performer_role="warehouse",
        emitter=_emit_receipt, duration=(86400, 604800),
        next_step="post_invoice",
    ))
    spec.add(ActivityStep(
        name="post_invoice", performer_role="vendor",
        emitter=_emit_invoice, duration=(3600, 259200),
        next_step="pay",
    ))
    spec.add(ActivityStep(
        name="pay", performer_role="finance",
        emitter=_emit_payment, duration=(3600, 86400),
        next_step="end",
    ))
    spec.add(EndStep())
    return spec


def build_mapping(model: ProvenanceDataModel) -> EventMapping:
    mapping = EventMapping(model)
    mapping.rule(
        kind="directory.person.registered",
        record_class=RecordClass.RESOURCE, entity_type="person",
        fields={"name": "name", "email": "email", "manager": "manager"},
        key="email",
    )
    mapping.rule(
        kind="workflow.po.created",
        record_class=RecordClass.DATA, entity_type="purchaseorder",
        fields={
            "poid": "poid", "amount": "amount", "vendor": "vendor",
            "requester_email": "requester_email",
        },
        key="poid",
    )
    mapping.rule(
        kind="workflow.po.approved",
        record_class=RecordClass.DATA, entity_type="poapproval",
        fields={
            "poid": "poid", "status": "status",
            "approver_email": "approver_email",
        },
        key="poid",
    )
    mapping.rule(
        kind="document.goods.received",
        record_class=RecordClass.DATA, entity_type="goodsreceipt",
        fields={"poid": "poid", "quantity": "quantity"},
        key="poid",
    )
    mapping.rule(
        kind="database.invoice.posted",
        record_class=RecordClass.DATA, entity_type="invoice",
        fields={"poid": "poid", "amount": "amount", "vendor": "vendor"},
        key="poid",
    )
    mapping.rule(
        kind="database.payment.executed",
        record_class=RecordClass.DATA, entity_type="payment",
        fields={"poid": "poid", "amount": "amount"},
        key="poid",
    )
    return mapping


def correlation_rules() -> List[CorrelationRule]:
    order = RecordQuery(entity_type="purchaseorder")
    return [
        attribute_join("approval-by-poid", "approvalFor",
                       RecordQuery(entity_type="poapproval"), order,
                       "poid", "poid"),
        attribute_join("receipt-by-poid", "receiptFor",
                       RecordQuery(entity_type="goodsreceipt"), order,
                       "poid", "poid"),
        attribute_join("invoice-by-poid", "invoiceFor",
                       RecordQuery(entity_type="invoice"), order,
                       "poid", "poid"),
        attribute_join("payment-by-poid", "paymentFor",
                       RecordQuery(entity_type="payment"), order,
                       "poid", "poid"),
        attribute_join("requester-by-email", "requesterOf",
                       RecordQuery(entity_type="person"), order,
                       "email", "requester_email"),
    ]


PO_APPROVAL_CONTROL = f"""
definitions
  set 'the order' to a Purchase Order
      where the amount of this Purchase Order is at least
      {APPROVAL_THRESHOLD} ;
if
  the approval of 'the order' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "above-threshold order placed without approval"
"""

SOD_CONTROL = f"""
definitions
  set 'the order' to a Purchase Order
      where the amount of this Purchase Order is at least
      {APPROVAL_THRESHOLD} ;
  set 'the approval' to the approval of 'the order' ;
if
  any of the following conditions are true :
    - 'the approval' is null ,
    - the approver email of 'the approval' is not
      the requester email of 'the order'
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "order approved by its own requester"
"""

THREE_WAY_MATCH_CONTROL = """
definitions
  set 'the order' to a Purchase Order
      where the payment of this Purchase Order is not null ;
if
  all of the following conditions are true :
    - the receipt of 'the order' is not null ,
    - the invoice of 'the order' is not null ,
    - the amount of the invoice of 'the order' is
      the amount of 'the order'
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "payment without a clean order/receipt/invoice match"
"""

CONTROL_SPECS = (
    ControlSpec(
        name="po-approval",
        text=PO_APPROVAL_CONTROL,
        severity=ControlSeverity.HIGH,
        description="Orders at/above threshold require manager approval.",
    ),
    ControlSpec(
        name="sod-procurement",
        text=SOD_CONTROL,
        severity=ControlSeverity.CRITICAL,
        description="Requesters must not approve their own orders.",
    ),
    ControlSpec(
        name="three-way-match",
        text=THREE_WAY_MATCH_CONTROL,
        severity=ControlSeverity.HIGH,
        description="Pay only with matching order, receipt and invoice.",
    ),
)


def ground_truth(case: dict, control_name: str) -> ComplianceStatus:
    above = case["amount"] >= APPROVAL_THRESHOLD
    skip = has_violation(case, "skip_po_approval")
    selfish = has_violation(case, "self_approval")
    noreceipt = has_violation(case, "no_receipt")
    mismatch = has_violation(case, "price_mismatch")

    if control_name == "po-approval":
        if not above:
            return ComplianceStatus.NOT_APPLICABLE
        return (
            ComplianceStatus.VIOLATED if skip else ComplianceStatus.SATISFIED
        )
    if control_name == "sod-procurement":
        if not above:
            return ComplianceStatus.NOT_APPLICABLE
        if skip:
            return ComplianceStatus.SATISFIED
        return (
            ComplianceStatus.VIOLATED if selfish
            else ComplianceStatus.SATISFIED
        )
    if control_name == "three-way-match":
        # Payment always happens, so the control applies to every case.
        if noreceipt or mismatch:
            return ComplianceStatus.VIOLATED
        return ComplianceStatus.SATISFIED
    raise ValueError(f"unknown control {control_name!r}")


def workload() -> Workload:
    return Workload(
        name="purchase-to-pay",
        build_model=build_model,
        build_spec=build_spec,
        case_factory=case_factory,
        build_mapping=build_mapping,
        correlation_rules=correlation_rules,
        control_specs=CONTROL_SPECS,
        ground_truth=ground_truth,
        violation_kinds=VIOLATION_KINDS,
    )
