"""Visibility projection: making processes partially managed.

"Visibility of an unmanaged process is measured by the amount of relevant
process artifacts that can be captured and distinguished" (§II).  A
:class:`VisibilityPolicy` models that: each event source system has a
capture probability, and the policy drops events the recording
infrastructure would never see.  Three canonical management profiles:

- ``FULLY_MANAGED`` — a BPM engine drives everything; all events captured,
- ``PARTIALLY_MANAGED`` — the workflow core is instrumented, but documents,
  e-mail and manual steps are only partially visible,
- ``UNMANAGED`` — no process engine; only scattered artifacts surface.

The projection is deterministic per seed, and — crucially for experiment
E4's ground truth — it reports exactly which events it dropped.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.mapping import EventMapping


class ManagementProfile(enum.Enum):
    """Preset capture probabilities per event source."""

    FULLY_MANAGED = "fully_managed"
    PARTIALLY_MANAGED = "partially_managed"
    UNMANAGED = "unmanaged"

    def capture_rates(self) -> Dict[EventSource, float]:
        if self is ManagementProfile.FULLY_MANAGED:
            return {source: 1.0 for source in EventSource}
        if self is ManagementProfile.PARTIALLY_MANAGED:
            return {
                EventSource.WORKFLOW: 1.0,
                EventSource.DATABASE: 0.95,
                EventSource.DIRECTORY: 0.9,
                EventSource.DOCUMENT: 0.7,
                EventSource.EMAIL: 0.5,
                EventSource.MANUAL: 0.3,
            }
        return {
            EventSource.WORKFLOW: 0.4,
            EventSource.DATABASE: 0.5,
            EventSource.DIRECTORY: 0.6,
            EventSource.DOCUMENT: 0.3,
            EventSource.EMAIL: 0.2,
            EventSource.MANUAL: 0.1,
        }


@dataclass
class VisibilityPolicy:
    """Per-source capture probabilities applied to an event stream.

    Args:
        rates: capture probability per source; sources absent from the map
            use *default_rate*.
        default_rate: fallback probability.
        seed: RNG seed for the drop decisions.
    """

    rates: Dict[EventSource, float] = field(default_factory=dict)
    default_rate: float = 1.0
    seed: int = 13

    @classmethod
    def from_profile(
        cls, profile: ManagementProfile, seed: int = 13
    ) -> "VisibilityPolicy":
        return cls(rates=profile.capture_rates(), seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 13) -> "VisibilityPolicy":
        """The E4 sweep knob: every source captured with probability *rate*."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"capture rate must be in [0,1], got {rate}")
        return cls(rates={}, default_rate=rate, seed=seed)

    def rate_for(self, source: EventSource) -> float:
        return self.rates.get(source, self.default_rate)

    def project(
        self, events: Iterable[ApplicationEvent]
    ) -> Tuple[List[ApplicationEvent], List[ApplicationEvent]]:
        """Split *events* into (visible, dropped), deterministically."""
        rng = random.Random(self.seed)
        visible: List[ApplicationEvent] = []
        dropped: List[ApplicationEvent] = []
        for event in events:
            if rng.random() < self.rate_for(event.source):
                visible.append(event)
            else:
                dropped.append(event)
        return visible, dropped

    def observable_types(self, mapping: EventMapping) -> Set[str]:
        """Entity types that can be captured at all under this policy.

        A node type is observable when at least one mapping rule produces it
        from an event kind whose source has non-zero capture probability.
        Rule evaluation uses this set to return UNDETERMINED instead of a
        fabricated verdict for concepts that cannot have evidence.

        Event kinds are assumed to encode their source as the prefix before
        the first dot matching an :class:`EventSource` value (e.g.
        ``workflow.task.completed``); kinds without such a prefix are
        treated as observable whenever any source has non-zero rate.
        """
        any_nonzero = (
            any(rate > 0 for rate in self.rates.values())
            or self.default_rate > 0
        )
        observable: Set[str] = set()
        for rule in mapping._rules:  # noqa: SLF001 - capture-internal view
            prefix = rule.kind.split(".", 1)[0]
            source = _SOURCE_BY_NAME.get(prefix)
            if source is not None:
                if self.rate_for(source) > 0:
                    observable.add(rule.entity_type)
            elif any_nonzero:
                observable.add(rule.entity_type)
        return observable


_SOURCE_BY_NAME = {source.value: source for source in EventSource}
