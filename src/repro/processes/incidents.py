"""IT incident-management workload.

A service-operations process with *temporal* internal controls — the class
of control the built-in ``timestamp`` verbalization enables:

    open incident → triage (set priority) → [P1: escalate] → resolve
    → close → [P1: postmortem]

Injected violation kinds:

- ``skip_escalation`` — a P1 incident is never escalated,
- ``skip_postmortem`` — a closed P1 incident gets no postmortem,
- ``close_before_resolve`` — the ticket is closed with a closure record
  timestamped *before* the resolution (back-dated closure, a classic
  SLA-gaming pattern only a temporal control catches).
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.capture.correlation import CorrelationRule, attribute_join
from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.mapping import EventMapping
from repro.controls.control import ControlSeverity
from repro.controls.status import ComplianceStatus
from repro.model.attributes import AttributeSpec
from repro.model.builder import ModelBuilder
from repro.model.records import RecordClass
from repro.model.schema import ProvenanceDataModel
from repro.processes.spec import ActivityStep, ChoiceStep, EndStep, ProcessSpec
from repro.processes.violations import ViolationPlan, has_violation
from repro.processes.workload import ControlSpec, Workload
from repro.store.query import RecordQuery

VIOLATION_KINDS = (
    "skip_escalation",
    "skip_postmortem",
    "close_before_resolve",
)

_SERVICES = ("payments", "checkout", "search", "auth", "billing")
_ENGINEERS = ("Noa Park", "Ola Quinn", "Pia Ruiz", "Quy Stone")


def build_model() -> ProvenanceDataModel:
    return (
        ModelBuilder("incident-management")
        .data(
            "incident",
            "Incident",
            incid=AttributeSpec("incid", verbalized="incident ID",
                                required=True),
            priority=str,
            service=str,
        )
        .data(
            "escalation",
            "Escalation",
            incid=AttributeSpec("incid", verbalized="incident ID"),
            level=str,
        )
        .data(
            "resolution",
            "Resolution",
            incid=AttributeSpec("incid", verbalized="incident ID"),
            resolver=str,
        )
        .data(
            "closure",
            "Closure",
            incid=AttributeSpec("incid", verbalized="incident ID"),
        )
        .data(
            "postmortem",
            "Postmortem",
            incid=AttributeSpec("incid", verbalized="incident ID"),
            author=str,
        )
        .resource("person", "Person", name=str, email=str)
        .relation("escalationOf", RecordClass.DATA, RecordClass.DATA,
                  label="the escalation of")
        .relation("resolutionOf", RecordClass.DATA, RecordClass.DATA,
                  label="the resolution of")
        .relation("closureOf", RecordClass.DATA, RecordClass.DATA,
                  label="the closure of")
        .relation("postmortemOf", RecordClass.DATA, RecordClass.DATA,
                  label="the postmortem of")
        .build()
    )


def case_factory(plan: ViolationPlan, p1_ratio: float = 0.35) -> Callable:
    def factory(index: int, rng: random.Random) -> dict:
        engineer = rng.choice(_ENGINEERS)
        case = {
            "incid": f"INC{index:04d}",
            "priority": "P1" if rng.random() < p1_ratio else "P3",
            "service": rng.choice(_SERVICES),
            "engineer": engineer,
        }
        plan.apply_to_case(case, rng)
        return case

    return factory


def _event(make_id, source, kind, timestamp, app_id, **payload):
    return ApplicationEvent(
        event_id=make_id(), source=source, kind=kind, timestamp=timestamp,
        app_id=app_id,
        payload={key: str(value) for key, value in payload.items()},
    )


def _emit_open(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.WORKFLOW, "workflow.incident.opened",
            start, case["app_id"],
            incid=case["incid"], priority=case["priority"],
            service=case["service"],
        )
    ]


def _emit_escalation(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.WORKFLOW, "workflow.incident.escalated",
            end, case["app_id"],
            incid=case["incid"], level="oncall-manager",
        )
    ]


def _emit_resolution(case, start, end, make_id) -> List[ApplicationEvent]:
    case["resolved_at"] = end
    return [
        _event(
            make_id, EventSource.DATABASE, "database.incident.resolved",
            end, case["app_id"],
            incid=case["incid"], resolver=case["engineer"],
        )
    ]


def _emit_closure(case, start, end, make_id) -> List[ApplicationEvent]:
    timestamp = end
    if has_violation(case, "close_before_resolve"):
        # Back-dated closure: stamped before the recorded resolution.
        timestamp = max(0, case.get("resolved_at", end) - 100)
    return [
        _event(
            make_id, EventSource.DATABASE, "database.incident.closed",
            timestamp, case["app_id"],
            incid=case["incid"],
        )
    ]


def _emit_postmortem(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.DOCUMENT, "document.postmortem.filed",
            end, case["app_id"],
            incid=case["incid"], author=case["engineer"],
        )
    ]


def build_spec() -> ProcessSpec:
    def route_escalation(case: dict) -> str:
        if case["priority"] != "P1":
            return "not_needed"
        if has_violation(case, "skip_escalation"):
            return "skipped"
        return "escalate"

    def route_postmortem(case: dict) -> str:
        if case["priority"] != "P1":
            return "not_needed"
        if has_violation(case, "skip_postmortem"):
            return "skipped"
        return "postmortem"

    spec = ProcessSpec("incident-management", start="open_incident")
    spec.add(ActivityStep(
        name="open_incident", performer_role="reporter",
        emitter=_emit_open, duration=(60, 600),
        next_step="escalation_gateway",
    ))
    spec.add(ChoiceStep(
        name="escalation_gateway", decider=route_escalation,
        branches={
            "escalate": "escalate",
            "not_needed": "resolve",
            "skipped": "resolve",
        },
    ))
    spec.add(ActivityStep(
        name="escalate", performer_role="oncall",
        emitter=_emit_escalation, duration=(60, 1800),
        next_step="resolve",
    ))
    spec.add(ActivityStep(
        name="resolve", performer_role="engineer",
        emitter=_emit_resolution, duration=(600, 86400),
        next_step="close",
    ))
    spec.add(ActivityStep(
        name="close", performer_role="engineer",
        emitter=_emit_closure, duration=(60, 3600),
        next_step="postmortem_gateway",
    ))
    spec.add(ChoiceStep(
        name="postmortem_gateway", decider=route_postmortem,
        branches={
            "postmortem": "file_postmortem",
            "not_needed": None,
            "skipped": None,
        },
    ))
    spec.add(ActivityStep(
        name="file_postmortem", performer_role="engineer",
        emitter=_emit_postmortem, duration=(3600, 259200),
        next_step="end",
    ))
    spec.add(EndStep())
    return spec


def build_mapping(model: ProvenanceDataModel) -> EventMapping:
    mapping = EventMapping(model)
    mapping.rule(
        kind="workflow.incident.opened",
        record_class=RecordClass.DATA, entity_type="incident",
        fields={"incid": "incid", "priority": "priority",
                "service": "service"},
        key="incid",
    )
    mapping.rule(
        kind="workflow.incident.escalated",
        record_class=RecordClass.DATA, entity_type="escalation",
        fields={"incid": "incid", "level": "level"},
        key="incid",
    )
    mapping.rule(
        kind="database.incident.resolved",
        record_class=RecordClass.DATA, entity_type="resolution",
        fields={"incid": "incid", "resolver": "resolver"},
        key="incid",
    )
    mapping.rule(
        kind="database.incident.closed",
        record_class=RecordClass.DATA, entity_type="closure",
        fields={"incid": "incid"},
        key="incid",
    )
    mapping.rule(
        kind="document.postmortem.filed",
        record_class=RecordClass.DATA, entity_type="postmortem",
        fields={"incid": "incid", "author": "author"},
        key="incid",
    )
    return mapping


def correlation_rules() -> List[CorrelationRule]:
    incident = RecordQuery(entity_type="incident")
    return [
        attribute_join("escalation-by-incid", "escalationOf",
                       RecordQuery(entity_type="escalation"), incident,
                       "incid", "incid"),
        attribute_join("resolution-by-incid", "resolutionOf",
                       RecordQuery(entity_type="resolution"), incident,
                       "incid", "incid"),
        attribute_join("closure-by-incid", "closureOf",
                       RecordQuery(entity_type="closure"), incident,
                       "incid", "incid"),
        attribute_join("postmortem-by-incid", "postmortemOf",
                       RecordQuery(entity_type="postmortem"), incident,
                       "incid", "incid"),
    ]


P1_ESCALATION_CONTROL = """
definitions
  set 'the incident' to an Incident
      where the priority of this Incident is "P1" ;
if
  the escalation of 'the incident' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "P1 incident was never escalated"
"""

POSTMORTEM_CONTROL = """
definitions
  set 'the incident' to an Incident
      where the priority of this Incident is "P1" ;
if
  any of the following conditions are true :
    - the closure of 'the incident' is null ,
    - the postmortem of 'the incident' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "closed P1 incident has no postmortem"
"""

CLOSE_AFTER_RESOLVE_CONTROL = """
definitions
  set 'the incident' to an Incident
      where the closure of this Incident is not null ;
  set 'the resolution' to the resolution of 'the incident' ;
  set 'the closure' to the closure of 'the incident' ;
if
  all of the following conditions are true :
    - 'the resolution' is not null ,
    - the timestamp of 'the resolution' is before
      the timestamp of 'the closure'
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "incident closed before (or without) its resolution"
"""

CONTROL_SPECS = (
    ControlSpec(
        name="p1-escalation",
        text=P1_ESCALATION_CONTROL,
        severity=ControlSeverity.HIGH,
        description="Every P1 incident must be escalated.",
    ),
    ControlSpec(
        name="p1-postmortem",
        text=POSTMORTEM_CONTROL,
        severity=ControlSeverity.MEDIUM,
        description="Closed P1 incidents require a postmortem.",
    ),
    ControlSpec(
        name="close-after-resolve",
        text=CLOSE_AFTER_RESOLVE_CONTROL,
        severity=ControlSeverity.CRITICAL,
        description=(
            "Closure must postdate resolution — catches back-dated "
            "closures (a temporal control)."
        ),
    ),
)


def ground_truth(case: dict, control_name: str) -> ComplianceStatus:
    is_p1 = case["priority"] == "P1"
    if control_name == "p1-escalation":
        if not is_p1:
            return ComplianceStatus.NOT_APPLICABLE
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "skip_escalation")
            else ComplianceStatus.SATISFIED
        )
    if control_name == "p1-postmortem":
        if not is_p1:
            return ComplianceStatus.NOT_APPLICABLE
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "skip_postmortem")
            else ComplianceStatus.SATISFIED
        )
    if control_name == "close-after-resolve":
        # Every case closes; the anchor always binds.
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "close_before_resolve")
            else ComplianceStatus.SATISFIED
        )
    raise ValueError(f"unknown control {control_name!r}")


def workload() -> Workload:
    return Workload(
        name="incident-management",
        build_model=build_model,
        build_spec=build_spec,
        case_factory=case_factory,
        build_mapping=build_mapping,
        correlation_rules=correlation_rules,
        control_specs=CONTROL_SPECS,
        ground_truth=ground_truth,
        violation_kinds=VIOLATION_KINDS,
    )
