"""The "New Position Open" process — the paper's Figure 1 workload.

"The hiring manager submits a job requisition for a new position.  If this
is for a new job position, the requisition is routed to the general manager
for approval.  If this is for an existing position, the requisition is
routed directly to human resources.  The general manager evaluates the
submitted requisition and either approves it or rejects it. […] If
approved, the requisition is routed to human resources [to find job
candidates].  Otherwise, it is terminated and the hiring manager is
notified" (§II.C, after the Lombardi user guide).

Records produced (§II.C's inventory):

- Data: Job Requisition, GM's approval (Approval Status), Candidate List,
  plus Notification,
- Task: submit job requisition, approve/reject requisition, find job
  candidates, notify hiring manager,
- Resource: hiring manager, general manager, human resources, system,
- Relations: actor, generates, submitterOf, approvalOf, candidatesFor,
  notificationFor.

Injected violation kinds (experiment E4 ground truth):

- ``skip_approval`` — a new-position case routes straight to candidate
  search without GM approval,
- ``self_approval`` — the hiring manager approves their own requisition
  (segregation-of-duties breach),
- ``no_candidates`` — hiring proceeds to notification without any recorded
  candidate search.
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.capture.correlation import SequenceRule, attribute_join
from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.mapping import EventMapping
from repro.controls.control import ControlSeverity
from repro.controls.status import ComplianceStatus
from repro.model.attributes import AttributeSpec
from repro.model.builder import ModelBuilder
from repro.model.records import RecordClass
from repro.model.schema import ProvenanceDataModel
from repro.processes.spec import ActivityStep, ChoiceStep, EndStep, ProcessSpec
from repro.processes.violations import ViolationPlan, has_violation
from repro.processes.workload import ControlSpec, Workload
from repro.store.query import RecordQuery

VIOLATION_KINDS = ("skip_approval", "self_approval", "no_candidates")

_FIRST_NAMES = ("Joe", "Jane", "Ada", "Max", "Ines", "Ravi", "Mei", "Omar")
_LAST_NAMES = ("Doe", "Smith", "Khan", "Garcia", "Chen", "Okafor", "Weber")
_DEPARTMENTS = ("Dept501", "Dept502", "Dept503", "Dept504")
_POSITIONS = ("Sales", "Engineer", "Analyst", "Designer", "Accountant")


# -- data model ----------------------------------------------------------------


def build_model() -> ProvenanceDataModel:
    """The provenance data model of §II.C, verbalization-ready."""
    return (
        ModelBuilder("new-position-open")
        .data(
            "jobrequisition",
            "Job Requisition",
            reqid=AttributeSpec("reqid", verbalized="requisition ID",
                                required=True),
            type=AttributeSpec("type", verbalized="position type"),
            position=AttributeSpec("position", verbalized="offered position"),
            dept=str,
            managergen=AttributeSpec("managergen",
                                     verbalized="general manager"),
            submitter_email=AttributeSpec(
                "submitter_email", verbalized="submitter email"
            ),
        )
        .data(
            "approvalstatus",
            "Approval Status",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            status=str,
            approver=str,
            approver_email=AttributeSpec(
                "approver_email", verbalized="approver email"
            ),
        )
        .data(
            "candidatelist",
            "Candidate List",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            count=int,
        )
        .data(
            "notification",
            "Notification",
            reqid=AttributeSpec("reqid", verbalized="requisition ID"),
            recipient=str,
        )
        .resource(
            "person",
            "Person",
            name=str,
            email=str,
            manager=str,
            role=str,
        )
        .task("submission", "Submission",
              start=int, end=int,
              actor_email=AttributeSpec("actor_email",
                                        verbalized="actor email"),
              reqid=AttributeSpec("reqid", verbalized="requisition ID"))
        .task("approvaltask", "Approval Task",
              start=int, end=int,
              actor_email=AttributeSpec("actor_email",
                                        verbalized="actor email"),
              reqid=AttributeSpec("reqid", verbalized="requisition ID"))
        .task("candidatesearch", "Candidate Search",
              start=int, end=int,
              actor_email=AttributeSpec("actor_email",
                                        verbalized="actor email"),
              reqid=AttributeSpec("reqid", verbalized="requisition ID"))
        .task("notifytask", "Notify Task",
              start=int, end=int,
              reqid=AttributeSpec("reqid", verbalized="requisition ID"))
        .relation("submitterOf", RecordClass.RESOURCE, RecordClass.DATA,
                  label="the submitter of")
        .relation("approvalOf", RecordClass.DATA, RecordClass.DATA,
                  label="the approval of")
        .relation("candidatesFor", RecordClass.DATA, RecordClass.DATA,
                  label="the candidate list of")
        .relation("notificationFor", RecordClass.DATA, RecordClass.DATA,
                  label="the notification of")
        .relation("actor", RecordClass.RESOURCE, RecordClass.TASK,
                  label="the actor of")
        .relation("generates", RecordClass.TASK, RecordClass.DATA,
                  label="the generator of")
        # The remaining two relations of §II.C's inventory ("manager",
        # "next task").  nextTask edges run predecessor -> successor, so
        # the target-side verbalization reads "the previous task of".
        .relation("managerOf", RecordClass.RESOURCE, RecordClass.RESOURCE,
                  label="the manager of")
        .relation("nextTask", RecordClass.TASK, RecordClass.TASK,
                  label="the previous task of")
        .build()
    )


# -- case factory ---------------------------------------------------------------


def case_factory(plan: ViolationPlan, new_ratio: float = 0.6) -> Callable:
    """Builds cases: people, requisition attributes, violation flags."""

    def factory(index: int, rng: random.Random) -> dict:
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        manager_first = rng.choice(_FIRST_NAMES)
        manager_last = rng.choice(_LAST_NAMES)
        hiring_manager = f"{first} {last}"
        general_manager = f"{manager_first} {manager_last}"
        case = {
            "reqid": f"Req{index:04d}",
            "position_type": (
                "new" if rng.random() < new_ratio else "existing"
            ),
            "position": rng.choice(_POSITIONS),
            "dept": rng.choice(_DEPARTMENTS),
            "hiring_manager": hiring_manager,
            "hm_email": f"{first.lower()}.{last.lower()}{index}@acme.com",
            "general_manager": general_manager,
            "gm_email": (
                f"{manager_first.lower()}.{manager_last.lower()}"
                f"{index}@acme.com"
            ),
            "hr_email": "hr@acme.com",
            "candidate_count": rng.randint(1, 9),
        }
        plan.apply_to_case(case, rng)
        return case

    return factory


# -- emitters ----------------------------------------------------------------------


def _event(
    make_id: Callable[[], str],
    source: EventSource,
    kind: str,
    timestamp: int,
    app_id: str,
    **payload: str,
) -> ApplicationEvent:
    return ApplicationEvent(
        event_id=make_id(),
        source=source,
        kind=kind,
        timestamp=timestamp,
        app_id=app_id,
        payload={key: str(value) for key, value in payload.items()},
    )


def _emit_submission(case, start, end, make_id) -> List[ApplicationEvent]:
    app_id = case["app_id"]
    return [
        _event(
            make_id, EventSource.DIRECTORY, "directory.person.registered",
            start, app_id,
            name=case["hiring_manager"], email=case["hm_email"],
            manager=case["general_manager"], role="Hiring Manager",
            salary_band="B2",  # sensitive; scrubbed by the recorder
        ),
        _event(
            make_id, EventSource.DIRECTORY, "directory.person.registered",
            start, app_id,
            name=case["general_manager"], email=case["gm_email"],
            manager="", role="General Manager",
            salary_band="C1",
        ),
        _event(
            make_id, EventSource.WORKFLOW, "workflow.submission.completed",
            end, app_id,
            reqid=case["reqid"], start=start, end=end,
            actor_email=case["hm_email"],
        ),
        _event(
            make_id, EventSource.WORKFLOW, "workflow.requisition.submitted",
            end, app_id,
            reqid=case["reqid"], type=case["position_type"],
            position=case["position"], dept=case["dept"],
            managergen=case["general_manager"],
            submitter_email=case["hm_email"],
        ),
    ]


def _emit_approval(case, start, end, make_id) -> List[ApplicationEvent]:
    app_id = case["app_id"]
    if has_violation(case, "self_approval"):
        approver = case["hiring_manager"]
        approver_email = case["hm_email"]
    else:
        approver = case["general_manager"]
        approver_email = case["gm_email"]
    return [
        _event(
            make_id, EventSource.WORKFLOW, "workflow.approvaltask.completed",
            end, app_id,
            reqid=case["reqid"], start=start, end=end,
            actor_email=approver_email,
        ),
        _event(
            make_id, EventSource.WORKFLOW, "workflow.approval.recorded",
            end, app_id,
            reqid=case["reqid"], status="approved",
            approver=approver, approver_email=approver_email,
        ),
    ]


def _emit_candidates(case, start, end, make_id) -> List[ApplicationEvent]:
    app_id = case["app_id"]
    return [
        _event(
            make_id, EventSource.WORKFLOW,
            "workflow.candidatesearch.completed",
            end, app_id,
            reqid=case["reqid"], start=start, end=end,
            actor_email=case["hr_email"],
        ),
        _event(
            make_id, EventSource.DOCUMENT, "document.candidates.found",
            end, app_id,
            reqid=case["reqid"], count=case["candidate_count"],
        ),
    ]


def _emit_notify(case, start, end, make_id) -> List[ApplicationEvent]:
    app_id = case["app_id"]
    return [
        _event(
            make_id, EventSource.WORKFLOW, "workflow.notifytask.completed",
            end, app_id,
            reqid=case["reqid"], start=start, end=end,
        ),
        _event(
            make_id, EventSource.EMAIL, "email.notification.sent",
            end, app_id,
            reqid=case["reqid"], recipient=case["hm_email"],
        ),
    ]


# -- process spec --------------------------------------------------------------------


def build_spec() -> ProcessSpec:
    """Figure 1 as a process spec, with violation-aware routing."""

    def route_position_type(case: dict) -> str:
        if case["position_type"] != "new":
            return "existing"
        if has_violation(case, "skip_approval"):
            return "skip_approval"
        return "new"

    def route_candidates(case: dict) -> str:
        if has_violation(case, "no_candidates"):
            return "skip"
        return "search"

    spec = ProcessSpec("new-position-open", start="submit_requisition")
    spec.add(
        ActivityStep(
            name="submit_requisition",
            performer_role="hiring_manager",
            emitter=_emit_submission,
            duration=(300, 1800),
            next_step="position_type_gateway",
        )
    )
    spec.add(
        ChoiceStep(
            name="position_type_gateway",
            decider=route_position_type,
            branches={
                "new": "approve_reject",
                "existing": "candidates_gateway",
                "skip_approval": "candidates_gateway",
            },
        )
    )
    spec.add(
        ActivityStep(
            name="approve_reject",
            performer_role="general_manager",
            emitter=_emit_approval,
            duration=(3600, 86400),
            next_step="candidates_gateway",
        )
    )
    spec.add(
        ChoiceStep(
            name="candidates_gateway",
            decider=route_candidates,
            branches={"search": "find_candidates", "skip": "notify"},
        )
    )
    spec.add(
        ActivityStep(
            name="find_candidates",
            performer_role="human_resources",
            emitter=_emit_candidates,
            duration=(3600, 172800),
            next_step="notify",
        )
    )
    spec.add(
        ActivityStep(
            name="notify",
            performer_role="system",
            emitter=_emit_notify,
            duration=(1, 60),
            next_step="end",
        )
    )
    spec.add(EndStep())
    return spec


# -- capture configuration ---------------------------------------------------------------


def build_mapping(model: ProvenanceDataModel) -> EventMapping:
    """Recorder typing rules: event kinds → provenance node types."""
    mapping = EventMapping(model)
    mapping.rule(
        kind="directory.person.registered",
        record_class=RecordClass.RESOURCE,
        entity_type="person",
        fields={
            "name": "name", "email": "email",
            "manager": "manager", "role": "role",
        },
        key="email",
    )
    mapping.rule(
        kind="workflow.requisition.submitted",
        record_class=RecordClass.DATA,
        entity_type="jobrequisition",
        fields={
            "reqid": "reqid", "type": "type", "position": "position",
            "dept": "dept", "managergen": "managergen",
            "submitter_email": "submitter_email",
        },
        key="reqid",
    )
    mapping.rule(
        kind="workflow.approval.recorded",
        record_class=RecordClass.DATA,
        entity_type="approvalstatus",
        fields={
            "reqid": "reqid", "status": "status",
            "approver": "approver", "approver_email": "approver_email",
        },
        key="reqid",
    )
    mapping.rule(
        kind="document.candidates.found",
        record_class=RecordClass.DATA,
        entity_type="candidatelist",
        fields={"reqid": "reqid", "count": "count"},
        key="reqid",
    )
    mapping.rule(
        kind="email.notification.sent",
        record_class=RecordClass.DATA,
        entity_type="notification",
        fields={"reqid": "reqid", "recipient": "recipient"},
        key="reqid",
    )
    for task in ("submission", "approvaltask", "candidatesearch",
                 "notifytask"):
        mapping.rule(
            kind=f"workflow.{task}.completed",
            record_class=RecordClass.TASK,
            entity_type=task,
            fields={
                "start": "start", "end": "end",
                "actor_email": "actor_email", "reqid": "reqid",
            },
            key="reqid",
        )
    return mapping


def sensitive_fields() -> List[str]:
    """Fields the recorder must never copy into provenance."""
    return ["salary_band"]


def correlation_rules() -> List:
    """The enrichment analytics producing Figure 2's edges."""
    requisition = RecordQuery(entity_type="jobrequisition")
    rules = [
        attribute_join(
            "submitter-by-email", "submitterOf",
            RecordQuery(entity_type="person"), requisition,
            "email", "submitter_email",
        ),
        attribute_join(
            "approval-by-reqid", "approvalOf",
            RecordQuery(entity_type="approvalstatus"), requisition,
            "reqid", "reqid",
        ),
        attribute_join(
            "candidates-by-reqid", "candidatesFor",
            RecordQuery(entity_type="candidatelist"), requisition,
            "reqid", "reqid",
        ),
        attribute_join(
            "notification-by-reqid", "notificationFor",
            RecordQuery(entity_type="notification"), requisition,
            "reqid", "reqid",
        ),
    ]
    for task in ("submission", "approvaltask", "candidatesearch"):
        rules.append(
            attribute_join(
                f"actor-of-{task}", "actor",
                RecordQuery(entity_type="person"),
                RecordQuery(entity_type=task),
                "email", "actor_email",
            )
        )
    for task in ("submission",):
        rules.append(
            attribute_join(
                f"{task}-generates", "generates",
                RecordQuery(entity_type=task), requisition,
                "reqid", "reqid",
            )
        )
    rules.append(
        attribute_join(
            "manager-of", "managerOf",
            RecordQuery(entity_type="person"),
            RecordQuery(entity_type="person"),
            "name", "manager",
        )
    )
    rules.append(
        SequenceRule(
            name="next-task",
            relation_type="nextTask",
            query=RecordQuery(record_class=RecordClass.TASK),
        )
    )
    return rules


# -- controls -------------------------------------------------------------------------------


GM_APPROVAL_CONTROL = """
definitions
  set 'the current job request' to a Job Requisition
      where the position type of this Job Requisition is "new" ;
if
  all of the following conditions are true :
    - the approval of 'the current job request' is not null ,
    - the candidate list of 'the current job request' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "new position without GM approval or candidate evidence"
"""

SOD_CONTROL = """
definitions
  set 'the current job request' to a Job Requisition
      where the position type of this Job Requisition is "new" ;
  set 'the approval' to the approval of 'the current job request' ;
if
  any of the following conditions are true :
    - 'the approval' is null ,
    - the approver email of 'the approval' is not
      the submitter email of 'the current job request'
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "requisition approved by its own submitter"
"""

SUBMITTER_KNOWN_CONTROL = """
definitions
  set 'the current job request' to a Job Requisition ;
if
  the submitter of 'the current job request' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "requisition has no identifiable submitter"
"""

CONTROL_SPECS = (
    ControlSpec(
        name="gm-approval",
        text=GM_APPROVAL_CONTROL,
        severity=ControlSeverity.HIGH,
        description=(
            "New-position requisitions need general-manager approval before "
            "the candidate search starts (the paper's worked control)."
        ),
    ),
    ControlSpec(
        name="sod-approval",
        text=SOD_CONTROL,
        severity=ControlSeverity.CRITICAL,
        description="A requisition must not be approved by its submitter.",
    ),
    ControlSpec(
        name="submitter-known",
        text=SUBMITTER_KNOWN_CONTROL,
        severity=ControlSeverity.LOW,
        description="Every requisition must trace back to a submitter.",
    ),
)


def ground_truth(case: dict, control_name: str) -> ComplianceStatus:
    """Expected status at *full* visibility, from the injected flags."""
    is_new = case["position_type"] == "new"
    skip = has_violation(case, "skip_approval")
    selfish = has_violation(case, "self_approval")
    nocand = has_violation(case, "no_candidates")

    if control_name == "gm-approval":
        if not is_new:
            return ComplianceStatus.NOT_APPLICABLE
        if skip or nocand:
            return ComplianceStatus.VIOLATED
        return ComplianceStatus.SATISFIED
    if control_name == "sod-approval":
        if not is_new:
            return ComplianceStatus.NOT_APPLICABLE
        # No approval at all: the SOD control is vacuously satisfied (the
        # gm-approval control owns that failure).
        if skip:
            return ComplianceStatus.SATISFIED
        return (
            ComplianceStatus.VIOLATED if selfish
            else ComplianceStatus.SATISFIED
        )
    if control_name == "submitter-known":
        return ComplianceStatus.SATISFIED
    raise ValueError(f"unknown control {control_name!r}")


def workload() -> Workload:
    """The assembled Figure-1 workload."""
    return Workload(
        name="new-position-open",
        build_model=build_model,
        build_spec=build_spec,
        case_factory=case_factory,
        build_mapping=build_mapping,
        correlation_rules=correlation_rules,
        control_specs=CONTROL_SPECS,
        ground_truth=ground_truth,
        violation_kinds=VIOLATION_KINDS,
    )
