"""Violation injection with ground truth.

Workloads inject compliance violations at controlled rates so detection
quality is measurable (experiment E4).  A :class:`ViolationPlan` draws, per
case, which violation kinds occur; the draw lands in the case dict under
``violations`` — the *ground truth* the metrics compare detections against.

Injection is behavioural, not cosmetic: a case flagged ``skip_approval``
actually routes around the approval activity, so the violation manifests
(or, under partial visibility, fails to manifest) through the normal event
→ capture → graph → rule pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class ViolationPlan:
    """Per-kind injection probabilities.

    Attributes:
        rates: violation kind → probability a case carries it.  Kinds are
            workload-specific strings (e.g. ``skip_approval``,
            ``self_approval``).
    """

    rates: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"violation rate for {kind!r} must be in [0,1]"
                )

    @classmethod
    def none(cls) -> "ViolationPlan":
        """A clean workload: no injected violations."""
        return cls(rates={})

    @classmethod
    def uniform(cls, kinds: List[str], rate: float) -> "ViolationPlan":
        return cls(rates={kind: rate for kind in kinds})

    def draw(self, rng: random.Random) -> Set[str]:
        """The violation kinds one case carries (independent draws)."""
        return {
            kind
            for kind, rate in sorted(self.rates.items())
            if rng.random() < rate
        }

    def apply_to_case(self, case: dict, rng: random.Random) -> dict:
        """Stamp the drawn violations into *case* (under ``violations``)."""
        case["violations"] = self.draw(rng)
        return case


def has_violation(case: dict, kind: str) -> bool:
    """Whether ground truth says *case* carries violation *kind*."""
    return kind in case.get("violations", set())
