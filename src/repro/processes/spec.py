"""Process specifications.

A process is a directed graph of steps:

- :class:`ActivityStep` — work performed by a role; emits application
  events when executed (via an emitter function of the case),
- :class:`ChoiceStep` — an XOR gateway routing by a decision function of
  the case (deterministic given the case, which carries any random draws
  made at case creation),
- :class:`EndStep` — terminates the case.

The structure mirrors what Figure 1 needs (sequences + XOR choices) without
trying to be full BPMN; loops are expressible (a step may point backwards)
and the simulator guards against runaway cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.capture.events import ApplicationEvent
from repro.errors import ProcessError

# An emitter produces the application events observed when an activity runs.
# Signature: (case, start_time, end_time, make_event_id) -> [ApplicationEvent]
Emitter = Callable[[dict, int, int, Callable[[], str]], List[ApplicationEvent]]

# A decider picks the label of the branch a case takes at a gateway.
Decider = Callable[[dict], str]


@dataclass(frozen=True)
class ActivityStep:
    """One unit of work in the process.

    Attributes:
        name: step name (unique within the spec).
        performer_role: the case attribute naming who performs it, for
            documentation and ground-truth checks.
        duration: (min, max) seconds the activity takes; the simulator draws
            uniformly within.
        emitter: produces the application events of this activity.
        next_step: the following step's name, or None when followed by end.
    """

    name: str
    performer_role: str
    emitter: Emitter
    duration: Tuple[int, int] = (60, 3600)
    next_step: Optional[str] = None


@dataclass(frozen=True)
class ChoiceStep:
    """An XOR gateway: routes the case by a decision function."""

    name: str
    decider: Decider
    branches: Dict[str, Optional[str]] = field(default_factory=dict)

    def route(self, case: dict) -> Optional[str]:
        label = self.decider(case)
        if label not in self.branches:
            raise ProcessError(
                f"gateway {self.name!r} decided unknown branch {label!r}"
            )
        return self.branches[label]


@dataclass(frozen=True)
class EndStep:
    """Explicit process end."""

    name: str = "end"


Step = object  # union of the three step kinds


class ProcessSpec:
    """A named process: steps plus a start pointer."""

    def __init__(self, name: str, start: str) -> None:
        self.name = name
        self.start = start
        self._steps: Dict[str, Step] = {}

    def add(self, step: Step) -> "ProcessSpec":
        name = step.name
        if name in self._steps:
            raise ProcessError(f"duplicate step {name!r}")
        self._steps[name] = step
        return self

    def step(self, name: str) -> Step:
        try:
            return self._steps[name]
        except KeyError:
            raise ProcessError(
                f"process {self.name!r} has no step {name!r}"
            ) from None

    def steps(self) -> List[Step]:
        return list(self._steps.values())

    def activity_names(self) -> List[str]:
        return [
            step.name
            for step in self._steps.values()
            if isinstance(step, ActivityStep)
        ]

    def validate(self) -> None:
        """Check every referenced step exists and the start is valid."""
        if self.start not in self._steps:
            raise ProcessError(f"start step {self.start!r} not defined")
        for step in self._steps.values():
            targets: List[Optional[str]] = []
            if isinstance(step, ActivityStep):
                targets = [step.next_step]
            elif isinstance(step, ChoiceStep):
                targets = list(step.branches.values())
            for target in targets:
                if target is not None and target not in self._steps:
                    raise ProcessError(
                        f"step {step.name!r} references missing step "
                        f"{target!r}"
                    )

    def describe(self) -> List[str]:
        """Human-readable step listing (the Figure-1 bench prints this)."""
        lines = [f"process {self.name!r} (start: {self.start})"]
        for step in self._steps.values():
            if isinstance(step, ActivityStep):
                lines.append(
                    f"  [activity] {step.name} "
                    f"(by {step.performer_role}) -> "
                    f"{step.next_step or 'end'}"
                )
            elif isinstance(step, ChoiceStep):
                branches = ", ".join(
                    f"{label} -> {target or 'end'}"
                    for label, target in step.branches.items()
                )
                lines.append(f"  [choice]   {step.name}: {branches}")
            else:
                lines.append(f"  [end]      {step.name}")
        return lines
