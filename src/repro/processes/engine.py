"""The process simulator.

Executes cases through a :class:`~repro.processes.spec.ProcessSpec` and
collects the application events each activity emits.  The simulator is the
stand-in for the paper's Lombardi runtime plus the surrounding legacy
systems: it produces events, not provenance — recorder clients and
correlation analytics (in :mod:`repro.capture`) do the rest, exactly as
they would against real systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.capture.events import ApplicationEvent
from repro.clock import SimulatedClock
from repro.errors import ProcessError
from repro.ids import IdFactory, trace_app_id
from repro.processes.spec import (
    ActivityStep,
    ChoiceStep,
    EndStep,
    ProcessSpec,
)

# A case factory builds the case dict for case number i (1-based).
CaseFactory = Callable[[int, random.Random], dict]

_MAX_STEPS_PER_CASE = 1000  # runaway-loop guard


@dataclass
class CaseRun:
    """The record of one simulated case.

    Attributes:
        app_id: the trace id (``App01`` …).
        case: the case attributes, including any violation flags the
            workload's violation plan set (this is the ground truth).
        path: the activity names executed, in order.
        events: every application event emitted (before any visibility
            projection).
        started_at / finished_at: simulated times.
    """

    app_id: str
    case: dict
    path: List[str] = field(default_factory=list)
    events: List[ApplicationEvent] = field(default_factory=list)
    started_at: int = 0
    finished_at: int = 0


class ProcessSimulator:
    """Runs cases through a process spec, deterministically per seed."""

    def __init__(
        self,
        spec: ProcessSpec,
        case_factory: CaseFactory,
        seed: int = 7,
        start_time: int = 0,
        case_interarrival: int = 3600,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.case_factory = case_factory
        self.rng = random.Random(seed)
        self.clock = SimulatedClock(start_time)
        self.case_interarrival = case_interarrival
        self.ids = IdFactory()
        self._case_index = 0

    def _next_event_id(self) -> str:
        return self.ids.next("EV")

    def run_case(self) -> CaseRun:
        """Simulate one case end to end."""
        self._case_index += 1
        app_id = trace_app_id(self._case_index)
        case = self.case_factory(self._case_index, self.rng)
        case.setdefault("app_id", app_id)

        run = CaseRun(app_id=app_id, case=case, started_at=self.clock.now())
        current: Optional[str] = self.spec.start
        steps_taken = 0
        while current is not None:
            steps_taken += 1
            if steps_taken > _MAX_STEPS_PER_CASE:
                raise ProcessError(
                    f"case {app_id} exceeded {_MAX_STEPS_PER_CASE} steps; "
                    f"is the process spec looping?"
                )
            step = self.spec.step(current)
            if isinstance(step, EndStep):
                break
            if isinstance(step, ChoiceStep):
                current = step.route(case)
                continue
            if isinstance(step, ActivityStep):
                current = self._run_activity(step, run)
                continue
            raise ProcessError(f"unknown step kind {type(step).__name__}")

        run.finished_at = self.clock.now()
        # Next case arrives after an exponential-ish gap (uniform draw keeps
        # determinism obvious; absolute spacing does not matter to controls).
        self.clock.advance(self.rng.randint(1, self.case_interarrival))
        return run

    def _run_activity(self, step: ActivityStep, run: CaseRun) -> Optional[str]:
        low, high = step.duration
        start = self.clock.now()
        end = self.clock.advance(self.rng.randint(low, high))
        run.path.append(step.name)
        events = step.emitter(run.case, start, end, self._next_event_id)
        for event in events:
            if not event.app_id:
                # Trace-aware systems stamp the app id; others leave it
                # blank and correlation has to attribute by content.  The
                # emitter decides; the engine fills only what it knows.
                pass
        run.events.extend(events)
        return step.next_step

    def run(self, cases: int) -> List[CaseRun]:
        """Simulate *cases* cases."""
        return [self.run_case() for __ in range(cases)]


def all_events(runs: List[CaseRun]) -> List[ApplicationEvent]:
    """All events of many runs, in emission order."""
    events: List[ApplicationEvent] = []
    for run in runs:
        events.extend(run.events)
    return events
