"""Workload harness: one bundle per business scenario.

A :class:`Workload` packages everything a scenario needs — data model,
process spec, case factory, capture configuration (mapping + correlation
rules), BAL control texts, and a ground-truth oracle — and provides
:meth:`Workload.simulate`, the full pipeline:

    simulate cases → visibility projection → recorder client → store
    → correlation analytics → (XOM → BOM → vocabulary) → authored controls

The returned :class:`SimulationResult` carries the populated store, the
ready vocabulary stack, the authored controls, and per-case ground truth —
everything examples, tests and benchmarks need in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.brms.verbalization import Verbalizer
from repro.brms.vocabulary import Vocabulary
from repro.brms.xom import ExecutableObjectModel
from repro.capture.correlation import CorrelationAnalytics, CorrelationRule
from repro.capture.mapping import EventMapping
from repro.capture.recorder import RecorderClient
from repro.controls.authoring import ControlAuthoringTool
from repro.controls.control import ControlSeverity, InternalControl
from repro.controls.status import ComplianceStatus
from repro.model.schema import ProvenanceDataModel
from repro.processes.engine import CaseRun, ProcessSimulator, all_events
from repro.processes.spec import ProcessSpec
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy
from repro.store.store import BackendSpec, ProvenanceStore

# Oracle: (case, control_name) -> expected ComplianceStatus at full
# visibility.
GroundTruth = Callable[[dict, str], ComplianceStatus]


@dataclass(frozen=True)
class ControlSpec:
    """One authored control of a workload."""

    name: str
    text: str
    severity: ControlSeverity = ControlSeverity.MEDIUM
    description: str = ""


@dataclass
class SimulationResult:
    """Everything produced by one workload simulation."""

    workload_name: str
    store: ProvenanceStore
    runs: List[CaseRun]
    model: ProvenanceDataModel
    xom: ExecutableObjectModel
    vocabulary: Vocabulary
    tool: ControlAuthoringTool
    controls: List[InternalControl]
    dropped_events: int = 0
    visible_events: int = 0
    observable_types: Optional[Set[str]] = None

    def ground_truth_for(
        self, oracle: GroundTruth
    ) -> Dict[str, Dict[str, ComplianceStatus]]:
        """trace id → control name → expected status (full visibility)."""
        truth: Dict[str, Dict[str, ComplianceStatus]] = {}
        for run in self.runs:
            truth[run.app_id] = {
                control.name: oracle(run.case, control.name)
                for control in self.controls
            }
        return truth


@dataclass(frozen=True)
class Workload:
    """A complete simulated business scenario."""

    name: str
    build_model: Callable[[], ProvenanceDataModel]
    build_spec: Callable[[], ProcessSpec]
    case_factory: Callable[[ViolationPlan], Callable]
    build_mapping: Callable[[ProvenanceDataModel], EventMapping]
    correlation_rules: Callable[[], Sequence[CorrelationRule]]
    control_specs: Sequence[ControlSpec]
    ground_truth: GroundTruth
    violation_kinds: Sequence[str] = field(default_factory=tuple)

    def simulate(
        self,
        cases: int,
        seed: int = 7,
        violations: Optional[ViolationPlan] = None,
        visibility: Optional[VisibilityPolicy] = None,
        indexed: bool = True,
        cache_vocabulary: bool = True,
        backend: "BackendSpec" = None,
    ) -> SimulationResult:
        """Run the full pipeline; see module docstring.

        Args:
            backend: where the store keeps its physical rows — a
                :class:`~repro.store.backends.base.StorageBackend`
                instance, a registry name (``"memory"``, ``"sqlite"``), or
                ``None`` for in-memory.  The pipeline and its verdicts are
                backend-independent; only durability and cost change.
        """
        plan = violations if violations is not None else ViolationPlan.none()
        model = self.build_model()
        spec = self.build_spec()
        simulator = ProcessSimulator(spec, self.case_factory(plan), seed=seed)
        runs = simulator.run(cases)
        events = all_events(runs)

        dropped_count = 0
        if visibility is not None:
            events, dropped = visibility.project(events)
            dropped_count = len(dropped)

        mapping = self.build_mapping(model)
        store = ProvenanceStore(model=model, indexed=indexed, backend=backend)
        recorder = RecorderClient(store, mapping)
        recorder.process_all(events)

        analytics = CorrelationAnalytics(store, model)
        for rule in self.correlation_rules():
            analytics.add_rule(rule)
        analytics.run()
        store.flush()

        xom, vocabulary, tool, controls = self._author_stack(
            model, cache_vocabulary
        )
        observable = (
            visibility.observable_types(mapping)
            if visibility is not None
            else None
        )
        return SimulationResult(
            workload_name=self.name,
            store=store,
            runs=runs,
            model=model,
            xom=xom,
            vocabulary=vocabulary,
            tool=tool,
            controls=controls,
            dropped_events=dropped_count,
            visible_events=len(events),
            observable_types=observable,
        )

    def attach(
        self,
        store: ProvenanceStore,
        visibility: Optional[VisibilityPolicy] = None,
        cache_vocabulary: bool = True,
    ) -> SimulationResult:
        """Build the vocabulary stack and controls over an *existing* store.

        The re-audit path: the physical rows already exist (e.g. a SQLite
        ``--db`` written by an earlier run, or a loaded dump), so
        simulation, capture and correlation are skipped — the rows are the
        single source of truth — and only the XOM → BOM → vocabulary →
        controls stack is rebuilt.  Verdicts over the attached store are
        identical to those of the run that produced the rows.

        ``runs`` is empty in the returned result (no ground truth without a
        simulation); *visibility* only recomputes ``observable_types`` so
        that UNDETERMINED verdicts match a partially-visible capture.
        """
        model = store.model if store.model is not None else self.build_model()
        xom, vocabulary, tool, controls = self._author_stack(
            model, cache_vocabulary
        )
        observable = (
            visibility.observable_types(self.build_mapping(model))
            if visibility is not None
            else None
        )
        return SimulationResult(
            workload_name=self.name,
            store=store,
            runs=[],
            model=model,
            xom=xom,
            vocabulary=vocabulary,
            tool=tool,
            controls=controls,
            dropped_events=0,
            visible_events=len(store),
            observable_types=observable,
        )

    def _author_stack(self, model: ProvenanceDataModel, cache_vocabulary: bool):
        """XOM → BOM → vocabulary → authored controls, shared by both the
        simulate and attach paths."""
        xom = ExecutableObjectModel(model)
        bom = Verbalizer(xom).verbalize()
        vocabulary = Vocabulary(bom, cache=cache_vocabulary)
        tool = ControlAuthoringTool(vocabulary)
        controls = []
        for control_spec in self.control_specs:
            controls.append(
                tool.author(
                    control_spec.name,
                    control_spec.text,
                    description=control_spec.description,
                    severity=control_spec.severity,
                )
            )
            tool.deploy(control_spec.name)
        return xom, vocabulary, tool, controls
