"""Expense-reimbursement workload.

A human-centric, lightly managed process (the kind the paper's introduction
motivates): much of the evidence lives in e-mail and scanned receipts, so
visibility losses bite hardest here.

    submit expense report → manager approval → (> audit threshold?) audit
    → reimburse

Injected violation kinds:

- ``skip_mgr_approval`` — reimbursement without manager approval,
- ``skip_audit`` — a high-value report dodges the audit step,
- ``missing_receipt`` — a report above the receipt threshold has none.
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.capture.correlation import CorrelationRule, attribute_join
from repro.capture.events import ApplicationEvent, EventSource
from repro.capture.mapping import EventMapping
from repro.controls.control import ControlSeverity
from repro.controls.status import ComplianceStatus
from repro.model.attributes import AttributeSpec
from repro.model.builder import ModelBuilder
from repro.model.records import RecordClass
from repro.model.schema import ProvenanceDataModel
from repro.processes.spec import ActivityStep, ChoiceStep, EndStep, ProcessSpec
from repro.processes.violations import ViolationPlan, has_violation
from repro.processes.workload import ControlSpec, Workload
from repro.store.query import RecordQuery

VIOLATION_KINDS = ("skip_mgr_approval", "skip_audit", "missing_receipt")

AUDIT_THRESHOLD = 1000
RECEIPT_THRESHOLD = 25

_EMPLOYEES = ("Finn Gray", "Gia Hale", "Hugo Iqbal", "Ida Jung", "Kai Lowe")
_CATEGORIES = ("travel", "meals", "equipment", "training")


def build_model() -> ProvenanceDataModel:
    return (
        ModelBuilder("expense-reimbursement")
        .data(
            "expensereport",
            "Expense Report",
            expid=AttributeSpec("expid", verbalized="report ID",
                                required=True),
            amount=int,
            category=str,
            receipt=AttributeSpec("receipt", verbalized="receipt status"),
            employee_email=AttributeSpec(
                "employee_email", verbalized="employee email"
            ),
        )
        .data(
            "expenseapproval",
            "Expense Approval",
            expid=AttributeSpec("expid", verbalized="report ID"),
            approver_email=AttributeSpec(
                "approver_email", verbalized="approver email"
            ),
        )
        .data(
            "auditrecord",
            "Audit Record",
            expid=AttributeSpec("expid", verbalized="report ID"),
            auditor=str,
        )
        .data(
            "reimbursement",
            "Reimbursement",
            expid=AttributeSpec("expid", verbalized="report ID"),
            amount=int,
        )
        .resource("person", "Person", name=str, email=str, manager=str)
        .relation("approvalFor", RecordClass.DATA, RecordClass.DATA,
                  label="the approval of")
        .relation("auditFor", RecordClass.DATA, RecordClass.DATA,
                  label="the audit of")
        .relation("reimbursementFor", RecordClass.DATA, RecordClass.DATA,
                  label="the reimbursement of")
        .relation("claimantOf", RecordClass.RESOURCE, RecordClass.DATA,
                  label="the claimant of")
        .build()
    )


def case_factory(plan: ViolationPlan) -> Callable:
    def factory(index: int, rng: random.Random) -> dict:
        employee = rng.choice(_EMPLOYEES)
        slug = employee.lower().replace(" ", ".")
        case = {
            "expid": f"EXP{index:04d}",
            "amount": rng.randint(10, 3000),
            "category": rng.choice(_CATEGORIES),
            "employee": employee,
            "employee_email": f"{slug}@acme.com",
            "manager_email": f"manager.{slug}@acme.com",
        }
        plan.apply_to_case(case, rng)
        return case

    return factory


def _event(make_id, source, kind, timestamp, app_id, **payload):
    return ApplicationEvent(
        event_id=make_id(), source=source, kind=kind, timestamp=timestamp,
        app_id=app_id,
        payload={key: str(value) for key, value in payload.items()},
    )


def _emit_submit(case, start, end, make_id) -> List[ApplicationEvent]:
    needs_receipt = case["amount"] >= RECEIPT_THRESHOLD
    has_receipt = needs_receipt and not has_violation(
        case, "missing_receipt"
    )
    return [
        _event(
            make_id, EventSource.DIRECTORY, "directory.person.registered",
            start, case["app_id"],
            name=case["employee"], email=case["employee_email"],
            manager=case["manager_email"],
        ),
        _event(
            make_id, EventSource.MANUAL, "manual.expense.submitted",
            end, case["app_id"],
            expid=case["expid"], amount=case["amount"],
            category=case["category"],
            receipt="attached" if has_receipt else "none",
            employee_email=case["employee_email"],
        ),
    ]


def _emit_approval(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.EMAIL, "email.expense.approved",
            end, case["app_id"],
            expid=case["expid"], approver_email=case["manager_email"],
        )
    ]


def _emit_audit(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.MANUAL, "manual.audit.performed",
            end, case["app_id"],
            expid=case["expid"], auditor="internal-audit",
        )
    ]


def _emit_reimburse(case, start, end, make_id) -> List[ApplicationEvent]:
    return [
        _event(
            make_id, EventSource.DATABASE, "database.reimbursement.paid",
            end, case["app_id"],
            expid=case["expid"], amount=case["amount"],
        )
    ]


def build_spec() -> ProcessSpec:
    def route_approval(case: dict) -> str:
        return (
            "skip" if has_violation(case, "skip_mgr_approval") else "approve"
        )

    def route_audit(case: dict) -> str:
        if case["amount"] <= AUDIT_THRESHOLD:
            return "not_needed"
        if has_violation(case, "skip_audit"):
            return "skipped"
        return "audit"

    spec = ProcessSpec("expense-reimbursement", start="submit_expense")
    spec.add(ActivityStep(
        name="submit_expense", performer_role="employee",
        emitter=_emit_submit, duration=(300, 7200),
        next_step="approval_gateway",
    ))
    spec.add(ChoiceStep(
        name="approval_gateway", decider=route_approval,
        branches={"approve": "approve_expense", "skip": "audit_gateway"},
    ))
    spec.add(ActivityStep(
        name="approve_expense", performer_role="manager",
        emitter=_emit_approval, duration=(3600, 172800),
        next_step="audit_gateway",
    ))
    spec.add(ChoiceStep(
        name="audit_gateway", decider=route_audit,
        branches={
            "audit": "audit_expense",
            "not_needed": "reimburse",
            "skipped": "reimburse",
        },
    ))
    spec.add(ActivityStep(
        name="audit_expense", performer_role="auditor",
        emitter=_emit_audit, duration=(3600, 259200),
        next_step="reimburse",
    ))
    spec.add(ActivityStep(
        name="reimburse", performer_role="finance",
        emitter=_emit_reimburse, duration=(3600, 86400),
        next_step="end",
    ))
    spec.add(EndStep())
    return spec


def build_mapping(model: ProvenanceDataModel) -> EventMapping:
    mapping = EventMapping(model)
    mapping.rule(
        kind="directory.person.registered",
        record_class=RecordClass.RESOURCE, entity_type="person",
        fields={"name": "name", "email": "email", "manager": "manager"},
        key="email",
    )
    mapping.rule(
        kind="manual.expense.submitted",
        record_class=RecordClass.DATA, entity_type="expensereport",
        fields={
            "expid": "expid", "amount": "amount", "category": "category",
            "receipt": "receipt", "employee_email": "employee_email",
        },
        key="expid",
    )
    mapping.rule(
        kind="email.expense.approved",
        record_class=RecordClass.DATA, entity_type="expenseapproval",
        fields={"expid": "expid", "approver_email": "approver_email"},
        key="expid",
    )
    mapping.rule(
        kind="manual.audit.performed",
        record_class=RecordClass.DATA, entity_type="auditrecord",
        fields={"expid": "expid", "auditor": "auditor"},
        key="expid",
    )
    mapping.rule(
        kind="database.reimbursement.paid",
        record_class=RecordClass.DATA, entity_type="reimbursement",
        fields={"expid": "expid", "amount": "amount"},
        key="expid",
    )
    return mapping


def correlation_rules() -> List[CorrelationRule]:
    report = RecordQuery(entity_type="expensereport")
    return [
        attribute_join("approval-by-expid", "approvalFor",
                       RecordQuery(entity_type="expenseapproval"), report,
                       "expid", "expid"),
        attribute_join("audit-by-expid", "auditFor",
                       RecordQuery(entity_type="auditrecord"), report,
                       "expid", "expid"),
        attribute_join("reimbursement-by-expid", "reimbursementFor",
                       RecordQuery(entity_type="reimbursement"), report,
                       "expid", "expid"),
        attribute_join("claimant-by-email", "claimantOf",
                       RecordQuery(entity_type="person"), report,
                       "email", "employee_email"),
    ]


MANAGER_APPROVAL_CONTROL = """
definitions
  set 'the report' to an Expense Report
      where the reimbursement of this Expense Report is not null ;
if
  the approval of 'the report' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "expense reimbursed without manager approval"
"""

AUDIT_CONTROL = f"""
definitions
  set 'the report' to an Expense Report
      where the amount of this Expense Report is more than
      {AUDIT_THRESHOLD} ;
if
  the audit of 'the report' is not null
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "high-value expense skipped internal audit"
"""

RECEIPT_CONTROL = f"""
definitions
  set 'the report' to an Expense Report
      where the amount of this Expense Report is at least
      {RECEIPT_THRESHOLD} ;
if
  the receipt status of 'the report' is "attached"
then
  the internal control is satisfied
else
  the internal control is not satisfied ;
  alert "expense above receipt threshold lacks a receipt"
"""

CONTROL_SPECS = (
    ControlSpec(
        name="manager-approval",
        text=MANAGER_APPROVAL_CONTROL,
        severity=ControlSeverity.HIGH,
        description="Every reimbursement needs manager approval.",
    ),
    ControlSpec(
        name="audit-high-value",
        text=AUDIT_CONTROL,
        severity=ControlSeverity.MEDIUM,
        description="Reports above the audit threshold must be audited.",
    ),
    ControlSpec(
        name="receipt-required",
        text=RECEIPT_CONTROL,
        severity=ControlSeverity.LOW,
        description="Reports above the receipt threshold need receipts.",
    ),
)


def ground_truth(case: dict, control_name: str) -> ComplianceStatus:
    amount = case["amount"]
    if control_name == "manager-approval":
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "skip_mgr_approval")
            else ComplianceStatus.SATISFIED
        )
    if control_name == "audit-high-value":
        if amount <= AUDIT_THRESHOLD:
            return ComplianceStatus.NOT_APPLICABLE
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "skip_audit")
            else ComplianceStatus.SATISFIED
        )
    if control_name == "receipt-required":
        if amount < RECEIPT_THRESHOLD:
            return ComplianceStatus.NOT_APPLICABLE
        return (
            ComplianceStatus.VIOLATED
            if has_violation(case, "missing_receipt")
            else ComplianceStatus.SATISFIED
        )
    raise ValueError(f"unknown control {control_name!r}")


def workload() -> Workload:
    return Workload(
        name="expense-reimbursement",
        build_model=build_model,
        build_spec=build_spec,
        case_factory=case_factory,
        build_mapping=build_mapping,
        correlation_rules=correlation_rules,
        control_specs=CONTROL_SPECS,
        ground_truth=ground_truth,
        violation_kinds=VIOLATION_KINDS,
    )
