"""Business-process simulation: the paper's missing substrate.

The paper runs on IBM WebSphere Lombardi; we simulate instead.  A
:class:`~repro.processes.spec.ProcessSpec` describes a process as activity
and choice steps; the :class:`~repro.processes.engine.ProcessSimulator`
executes cases through it, emitting the heterogeneous
:class:`~repro.capture.events.ApplicationEvent` streams real IT systems
would produce.  Determinism: everything derives from a seeded
``random.Random`` plus the simulated clock, so workloads regenerate
identically.

What makes processes *partially managed* is modelled explicitly:

- :mod:`repro.processes.visibility` — a projection dropping events by
  source-system capture probability (management profiles from fully managed
  to unmanaged),
- :mod:`repro.processes.violations` — controlled injection of compliance
  violations with per-case ground truth, the basis of experiment E4.

Workloads (each bundles a data model, capture configuration, process spec,
BAL controls, and ground truth):

- :mod:`repro.processes.hiring` — the paper's Figure-1 "New Position Open"
  process,
- :mod:`repro.processes.procurement` — purchase-to-pay with approval,
  three-way match and segregation-of-duties controls,
- :mod:`repro.processes.expenses` — expense reimbursement with receipt and
  audit controls.
"""

from repro.processes.spec import (
    ActivityStep,
    ChoiceStep,
    EndStep,
    ProcessSpec,
)
from repro.processes.engine import CaseRun, ProcessSimulator
from repro.processes.visibility import (
    ManagementProfile,
    VisibilityPolicy,
)
from repro.processes.violations import ViolationPlan

__all__ = [
    "ActivityStep",
    "CaseRun",
    "ChoiceStep",
    "EndStep",
    "ManagementProfile",
    "ProcessSimulator",
    "ProcessSpec",
    "ViolationPlan",
    "VisibilityPolicy",
]
