"""A simulated clock for deterministic timestamps.

All timestamps in the library are integers counting seconds from a simulated
epoch.  Simulation components advance the clock explicitly; nothing reads the
wall clock, so every run of an example or benchmark regenerates identical
provenance rows.
"""

from __future__ import annotations


class SimulatedClock:
    """Monotonic integer clock advanced explicitly by the simulation.

    >>> clock = SimulatedClock(start=100)
    >>> clock.now()
    100
    >>> clock.advance(5)
    105
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock start must be non-negative")
        self._now = start

    def now(self) -> int:
        """Current simulated time in seconds since the simulated epoch."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward by *seconds* (must be non-negative) and return it."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def at_least(self, timestamp: int) -> int:
        """Advance the clock to *timestamp* if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


def format_timestamp(seconds: int) -> str:
    """Render a simulated timestamp as the ``D.HH:MM:SS`` display format.

    The paper's Table I elides concrete timestamp values; the library uses a
    compact day-offset format so rendered tables stay narrow.
    """
    days, rest = divmod(seconds, 86400)
    hours, rest = divmod(rest, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{days}.{hours:02d}:{minutes:02d}:{secs:02d}"
