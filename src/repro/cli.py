"""Command-line interface.

Four subcommands wrap the common flows so the system is drivable without
writing Python::

    python -m repro simulate hiring --cases 50 --violation-rate 0.2
    python -m repro check hiring --cases 50 --violation-rate 0.2 \
        --visibility 0.8
    python -m repro vocabulary hiring

- ``simulate`` runs a workload and prints capture statistics plus the
  Table-I rows of the first trace,
- ``check`` runs the workload, evaluates its controls, and prints the
  compliance dashboard (optionally under a visibility projection); with
  ``--incremental`` it restores the materialized verdict snapshot from the
  backend, re-evaluates only traces that changed since it was saved, and
  saves the updated snapshot back,
- ``watch`` tails a (SQLite) store's change feed: rows appended by other
  processes are folded in on each poll and only the affected
  (control, trace) pairs re-evaluate, printing verdict transitions live,
- ``serve`` runs the long-lived compliance service: a
  :class:`~repro.service.runtime.ComplianceRuntime` over the store with a
  background refresh loop and a stdlib HTTP front end — recorder clients
  POST event batches to ``/ingest`` while readers GET fresh verdicts, and
  a graceful shutdown persists the verdict snapshot so a restart resumes
  from its cursor::

      python -m repro serve hiring --backend sqlite --db out.db --port 8787

- ``scenarios`` lists the registered workloads with their control counts
  and ground-truth coverage,
- ``report`` prints a full audit report,
- ``vocabulary`` prints the rule editor's drop-down menus for a workload's
  generated business vocabulary.

Every subcommand takes ``--backend {memory,sqlite}`` and ``--db PATH`` to
pick where the provenance store keeps its physical Table-I rows.  With
``--backend sqlite --db out.db`` the rows persist: a later ``check`` or
``report`` against the same ``--db`` skips simulation entirely and audits
the stored rows — the capture-once / audit-later split of §II.A::

    python -m repro simulate hiring --backend sqlite --db out.db
    python -m repro check hiring --backend sqlite --db out.db

``--shards N`` partitions the store by APPID hash into N child backends
(for SQLite: ``out.db.shard-00`` … files, each with its own write lock),
and ``store-stats`` prints per-shard row counts, feed positions, and
on-disk sizes for eyeballing the balance::

    python -m repro simulate hiring --backend sqlite --db out.db --shards 4
    python -m repro store-stats --backend sqlite --db out.db --shards 4
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.controls.dashboard import ComplianceDashboard
from repro.errors import BackendError
from repro.controls.evaluator import ComplianceEvaluator
from repro.processes import expenses, hiring, incidents, procurement
from repro.processes.violations import ViolationPlan
from repro.processes.visibility import VisibilityPolicy
from repro.reporting.tables import render_provenance_table
from repro.store.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
)

WORKLOADS = {
    "hiring": hiring,
    "procurement": procurement,
    "expenses": expenses,
    "incidents": incidents,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Internal control points for partially managed processes "
            "(Doganata, ICDE 2011 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend", choices=("memory", "sqlite"), default="memory",
            help="storage backend for the provenance store",
        )
        p.add_argument(
            "--db", default=None, metavar="PATH",
            help=(
                "SQLite database path (implies persistence; a populated "
                "database is reused instead of re-simulating)"
            ),
        )
        p.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help=(
                "partition the store into N shards by APPID hash (for "
                "sqlite: one <db>.shard-0i file per shard, each with its "
                "own write lock)"
            ),
        )
        p.add_argument(
            "--decode-cache", type=int, default=None, metavar="N",
            help=(
                "capacity of the sqlite backend's decoded-record LRU "
                "cache (default: REPRO_DECODE_CACHE env var, else 4096)"
            ),
        )

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "workload", choices=sorted(WORKLOADS),
            help="which simulated business scenario to run",
        )
        p.add_argument("--cases", type=int, default=50,
                       help="number of process cases to simulate")
        p.add_argument("--seed", type=int, default=7,
                       help="simulation seed (runs are deterministic)")
        p.add_argument(
            "--violation-rate", type=float, default=0.0,
            help="injection probability per violation kind (0..1)",
        )
        p.add_argument(
            "--visibility", type=float, default=None,
            help="uniform capture rate (0..1); omit for full visibility",
        )
        add_backend_args(p)

    simulate = sub.add_parser(
        "simulate", help="simulate a workload and show what was captured"
    )
    add_workload_args(simulate)

    def add_evaluation_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--execution-mode", choices=("compiled", "interpret"),
            default="compiled",
            help=(
                "rule execution back end: 'compiled' lowers each control "
                "to Python closures once (fast, the default); 'interpret' "
                "walks the AST every evaluation (the reference semantics)"
            ),
        )
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help=(
                "evaluate the compliance sweep with N worker processes "
                "(fork-based; falls back to serial where fork is "
                "unavailable)"
            ),
        )

    check = sub.add_parser(
        "check", help="simulate, evaluate controls, print the dashboard"
    )
    add_workload_args(check)
    add_evaluation_args(check)
    check.add_argument(
        "--exceptions-only", action="store_true",
        help="print only the violation report",
    )
    check.add_argument(
        "--incremental", action="store_true",
        help=(
            "restore the materialized verdict snapshot from the storage "
            "backend, re-evaluate only traces appended to since it was "
            "saved, and save the updated snapshot back (most useful with "
            "--backend sqlite --db, where snapshots survive the process)"
        ),
    )

    watch = sub.add_parser(
        "watch",
        help=(
            "tail a store's change feed, re-evaluating affected pairs as "
            "rows arrive"
        ),
    )
    add_workload_args(watch)
    watch.add_argument(
        "--execution-mode", choices=("compiled", "interpret"),
        default="compiled",
        help="rule execution back end (see 'check')",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll interval between change-feed syncs",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="sync and refresh a single time, then exit (for scripting)",
    )
    watch.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="exit after N polls (default: watch until interrupted)",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the compliance service: HTTP ingest + verdict queries "
            "over a live runtime with a background refresh loop"
        ),
    )
    add_workload_args(serve)
    # A server usually fronts an existing --db; an empty store starts
    # empty and fills from /ingest rather than self-simulating.
    serve.set_defaults(cases=0)
    serve.add_argument(
        "--execution-mode", choices=("compiled", "interpret"),
        default="compiled",
        help="rule execution back end (see 'check')",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8787, metavar="N",
        help="TCP port; 0 picks a free port (printed at startup)",
    )
    serve.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="background change-feed refresh interval",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=0, metavar="N",
        help=(
            "persist the verdict snapshot every N refresh ticks "
            "(default: only at shutdown)"
        ),
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="list the registered workloads and their control points",
    )
    scenarios.add_argument(
        "--verbose", action="store_true",
        help="also list each workload's individual controls",
    )

    report = sub.add_parser(
        "report", help="simulate, evaluate, and print a full audit report"
    )
    add_workload_args(report)
    add_evaluation_args(report)

    vocabulary = sub.add_parser(
        "vocabulary", help="print the generated business vocabulary"
    )
    vocabulary.add_argument("workload", choices=sorted(WORKLOADS))
    add_backend_args(vocabulary)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "run seeded crash schedules through the fault-injection "
            "harness and verify every recovery invariant"
        ),
    )
    chaos.add_argument(
        "--schedules", type=int, default=25, metavar="N",
        help="schedules to run per backend kind",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help=(
            "base replay seed; schedule i runs with seed+i, so a failure "
            "report's seed replays as --seed <it> --schedules 1"
        ),
    )
    chaos.add_argument(
        "--backend", choices=("memory", "sqlite", "both"), default="both",
        help="which storage backend kinds to crash",
    )
    chaos.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help=(
            "run each schedule against an N-shard store with per-shard "
            "crash points (one shard can die while the others survive)"
        ),
    )
    chaos.add_argument(
        "--verbose", action="store_true",
        help="print one line per schedule (crash site, surviving rows)",
    )

    stats = sub.add_parser(
        "store-stats",
        help=(
            "print per-shard row counts, change-feed positions, and "
            "on-disk sizes of an existing store"
        ),
    )
    add_backend_args(stats)
    return parser


def _backend_for(args, threadsafe: bool = False) -> Optional[StorageBackend]:
    """The storage backend the flags select; None means in-memory default.

    *threadsafe* relaxes SQLite's same-thread check for stores a service
    runtime serializes behind its own lock (``serve``'s HTTP handler
    threads).
    """
    shards = getattr(args, "shards", 1)
    cache = getattr(args, "decode_cache", None)
    sqlite_options = {} if cache is None else {"cache_size": cache}
    if threadsafe:
        sqlite_options["threadsafe"] = True
    if shards > 1:
        if args.backend == "sqlite":
            if args.db:
                return ShardedBackend.for_sqlite(
                    args.db, shards, **sqlite_options
                )
            return ShardedBackend(
                [
                    SQLiteBackend(":memory:", **sqlite_options)
                    for _ in range(shards)
                ]
            )
        return ShardedBackend([MemoryBackend() for _ in range(shards)])
    if args.backend == "sqlite":
        return SQLiteBackend(args.db or ":memory:", **sqlite_options)
    return None


def _simulate(args, threadsafe: bool = False):
    module = WORKLOADS[args.workload]
    workload = module.workload()
    visibility = (
        VisibilityPolicy.uniform(args.visibility)
        if args.visibility is not None
        else None
    )
    backend = _backend_for(args, threadsafe=threadsafe)
    if backend is not None and backend.count() > 0:
        # The --db already holds captured rows: audit them instead of
        # re-simulating.  Verdicts match the run that wrote the rows.
        from repro.store.store import ProvenanceStore

        store = ProvenanceStore(model=workload.build_model(), backend=backend)
        return module, workload, workload.attach(store, visibility=visibility)
    plan = (
        ViolationPlan.uniform(list(module.VIOLATION_KINDS),
                              args.violation_rate)
        if args.violation_rate > 0
        else ViolationPlan.none()
    )
    sim = workload.simulate(
        cases=args.cases, seed=args.seed,
        violations=plan, visibility=visibility,
        backend=backend,
    )
    return module, workload, sim


def cmd_simulate(args, out) -> int:
    __, __, sim = _simulate(args)
    try:
        if sim.runs:
            print(
                f"workload {sim.workload_name!r}: {len(sim.runs)} cases, "
                f"{sim.visible_events} events captured, "
                f"{sim.dropped_events} dropped, "
                f"{len(sim.store)} provenance rows",
                file=out,
            )
        else:
            print(
                f"workload {sim.workload_name!r}: reusing "
                f"{len(sim.store)} provenance rows from {args.db!r}",
                file=out,
            )
        if sim.store.app_ids():
            trace_id = sim.store.app_ids()[0]
            rows = [r for r in sim.store.rows() if r.app_id == trace_id]
            print(file=out)
            print(
                render_provenance_table(
                    rows, title=f"Provenance rows of trace {trace_id}"
                ),
                file=out,
            )
        return 0
    finally:
        sim.store.close()


def cmd_check(args, out) -> int:
    module, workload, sim = _simulate(args)
    try:
        evaluator = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
            execution_mode=args.execution_mode,
        )
        if args.incremental:
            materializer = evaluator.materializer
            # The snapshot key depends on the registered control set, so
            # register before asking the backend for a snapshot.
            for control in sim.controls:
                materializer.register(control)
            restored = materializer.restore()
            before = materializer.refreshes
            results = evaluator.run(sim.controls, jobs=args.jobs)
            materializer.save()
            evaluated = materializer.refreshes - before
            origin = (
                "snapshot restored" if restored
                else "no snapshot (cold sweep)"
            )
            print(
                f"incremental: {origin}; {evaluated} of {len(results)} "
                f"(control, trace) pairs re-evaluated",
                file=out,
            )
        else:
            results = evaluator.run(sim.controls, jobs=args.jobs)
        dashboard = ComplianceDashboard()
        for control in sim.controls:
            dashboard.register_control(control)
        dashboard.record_all(results)
        if args.exceptions_only:
            exceptions = dashboard.exceptions()
            if not exceptions:
                print("no violations", file=out)
            for result in exceptions:
                print(result.describe(), file=out)
        else:
            print(dashboard.render(), file=out)
        return 1 if dashboard.exceptions() else 0
    finally:
        sim.store.close()


def cmd_watch(args, out) -> int:
    """Thin client of the service runtime's continuous-evaluation loop.

    Built *without* the workload's mapping/correlation: watch observes a
    feed other processes write to; it never adds rows of its own.
    """
    from repro.service import ComplianceRuntime

    __, __, sim = _simulate(args)
    runtime = ComplianceRuntime.from_simulation(
        sim, execution_mode=args.execution_mode, owns_store=True
    )
    try:
        report = runtime.open()
        print(
            f"watching {sim.workload_name!r}: "
            f"{report.traces} traces at seq {report.last_seq}; "
            f"{'snapshot restored, ' if report.restored else ''}"
            f"{report.evaluated} pairs evaluated at startup",
            file=out,
        )

        def announce(transition) -> None:
            if transition.changed:
                print(f"  {transition.describe()}", file=out)

        # Subscribed only after the startup sweep: the live feed shows
        # changes, not the initial materialization.
        runtime.subscribe(announce)

        def on_poll(outcome) -> None:
            if outcome.new_rows:
                print(
                    f"[seq {outcome.last_seq}] {outcome.new_rows} new "
                    f"row(s), {outcome.refreshed} pair(s) re-evaluated",
                    file=out,
                )

        # time.sleep resolved here, at call time, so a monkeypatched
        # clock (the fake-clock tests) is honoured.
        runtime.poll_loop(
            interval=args.interval,
            once=args.once,
            max_polls=args.max_polls,
            sleep=time.sleep,
            on_poll=on_poll,
        )
        return 0
    finally:
        # Graceful exit = snapshot + flush + close, same as the server's.
        runtime.shutdown()


def cmd_serve(args, out) -> int:
    """Run the compliance service until interrupted or POST /shutdown."""
    import signal

    from repro.service import ComplianceHTTPServer, ComplianceRuntime

    __, workload, sim = _simulate(args, threadsafe=True)
    runtime = ComplianceRuntime.from_simulation(
        sim, workload=workload,
        execution_mode=args.execution_mode, owns_store=True,
    )
    report = runtime.open()
    print(
        f"serving {sim.workload_name!r}: "
        f"{report.traces} traces at seq {report.last_seq}; "
        f"{'snapshot restored, ' if report.restored else ''}"
        f"{report.evaluated} pairs evaluated at startup",
        file=out,
    )
    if runtime.sharded:
        print(
            f"sharded runtime: {runtime.lane_count} parallel ingest "
            f"lanes (one per shard, routed by APPID hash)",
            file=out,
        )
    try:
        server = ComplianceHTTPServer(
            runtime, host=args.host, port=args.port
        )
    except OSError as exc:
        runtime.shutdown()
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}", file=out)
        return 1
    runtime.start_background(
        interval=args.interval, snapshot_every=args.snapshot_every
    )
    print(
        f"listening on {server.endpoint} "
        f"(refresh every {args.interval:g}s; Ctrl-C or POST /shutdown "
        f"to stop)",
        file=out,
    )
    if hasattr(out, "flush"):
        out.flush()  # scripted callers wait for the endpoint line

    def _stop(signum, frame) -> None:  # pragma: no cover - signal path
        server.request_shutdown()

    try:
        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
    except ValueError:
        pass  # not the main thread (tests drive serve from a thread)
    server.serve_until_shutdown()
    print("stopped; verdict snapshot persisted", file=out)
    return 0


def cmd_scenarios(args, out) -> int:
    """List the registered workloads and their control points."""
    from repro.reporting.tables import render_table

    rows = []
    details = []
    for key in sorted(WORKLOADS):
        module = WORKLOADS[key]
        workload = module.workload()
        rows.append(
            (
                key,
                workload.name,
                len(workload.control_specs),
                "yes" if workload.ground_truth is not None else "no",
                len(module.VIOLATION_KINDS),
            )
        )
        if args.verbose:
            details.append((key, workload))
    print(
        render_table(
            (
                "scenario", "process", "controls",
                "ground truth", "violation kinds",
            ),
            rows,
            title="Registered workloads",
        ),
        file=out,
    )
    for key, workload in details:
        print(file=out)
        print(f"{key}:", file=out)
        for spec in workload.control_specs:
            print(
                f"  {spec.name} [{spec.severity.value}]"
                f"{': ' + spec.description if spec.description else ''}",
                file=out,
            )
    return 0


def cmd_report(args, out) -> int:
    from repro.reporting.audit import AuditReportBuilder

    __, __, sim = _simulate(args)
    try:
        evaluator = ComplianceEvaluator(
            sim.store, sim.xom, sim.vocabulary,
            observable_types=sim.observable_types,
            execution_mode=args.execution_mode,
        )
        results = evaluator.run(sim.controls, jobs=args.jobs)
        builder = AuditReportBuilder(sim.store, sim.controls)
        print(builder.build(results), file=out)
        return 0
    finally:
        sim.store.close()


def cmd_chaos(args, out) -> int:
    """Run seeded crash schedules; exit 1 on any invariant violation."""
    from repro.faults import CheckFailure, run_schedules
    from repro.faults.checker import BACKEND_KINDS

    kinds = BACKEND_KINDS if args.backend == "both" else (args.backend,)

    def emit(report):
        if args.verbose:
            print(report.describe(), file=out)

    try:
        reports = run_schedules(
            args.schedules, base_seed=args.seed, backends=kinds,
            on_report=emit, shards=args.shards,
        )
    except CheckFailure as exc:
        print(f"chaos: FAILED\n{exc}", file=out)
        return 1
    crashed = sum(1 for r in reports if r.crashed)
    survived = sum(r.recovered for r in reports)
    acked = sum(r.acknowledged for r in reports)
    sharding = f" with {args.shards} shards" if args.shards > 1 else ""
    print(
        f"chaos: {len(reports)} schedules ok over {', '.join(kinds)}"
        f"{sharding} "
        f"(seeds {args.seed}..{args.seed + args.schedules - 1}): "
        f"{crashed} crashed, {len(reports) - crashed} closed clean; "
        f"{survived}/{acked} acknowledged rows survived recovery",
        file=out,
    )
    return 0


def _print_lane_stats(backend, out) -> None:
    """Per-lane ingest counters a sharded service runtime persisted.

    A sharded ``repro serve`` saves each lane's counters as auxiliary
    state at snapshot/shutdown; reporting them here makes ``store-stats``
    show how ingest load actually spread across lanes, instead of only
    the aggregate.
    """
    import json

    from repro.service.runtime import LANE_STATS_KEY

    raw = backend.load_state(LANE_STATS_KEY)
    if raw is None:
        return
    try:
        payload = json.loads(raw)
    except ValueError:
        return
    if not isinstance(payload, dict) or payload.get("version") != 1:
        return
    for entry in payload.get("lanes", ()):
        print(
            f"lane {entry.get('lane')}: "
            f"{entry.get('events_routed', 0)} events routed over "
            f"{entry.get('batches', 0)} batches, "
            f"{entry.get('dedup_hits', 0)} dedup hits, "
            f"{entry.get('correlation_batches', 0)} correlation batches "
            f"({entry.get('correlated_rows', 0)} relation rows)",
            file=out,
        )


def cmd_store_stats(args, out) -> int:
    """Per-shard row counts, feed positions, and on-disk sizes."""
    backend = _backend_for(args)
    if backend is None:
        backend = MemoryBackend()
    try:
        children = (
            list(backend.children)
            if isinstance(backend, ShardedBackend)
            else [backend]
        )
        total_rows = 0
        total_bytes = 0
        total_cols = 0
        cols_known = False
        for index, child in enumerate(children):
            rows = child.count()
            seq = child.last_seq()
            ids = child.app_ids()
            if ids is None:
                known = set()
                for row in child.iter_rows():
                    known.add(row.app_id)
                traces = len(known)
            else:
                traces = len(ids)
            if (
                isinstance(child, SQLiteBackend)
                and child.path != ":memory:"
                and os.path.exists(child.path)
            ):
                size = os.path.getsize(child.path)
                disk = f"{size} bytes ({child.path})"
            else:
                size = 0
                disk = "in memory"
            total_rows += rows
            total_bytes += size
            print(
                f"shard {index}: {rows} rows, {traces} traces, "
                f"last_seq {seq}, {disk}",
                file=out,
            )
            if isinstance(child, SQLiteBackend):
                cols_known = True
                with_cols, total = child.columnar_coverage()
                total_cols += with_cols
                print(
                    f"shard {index}: columnar: {with_cols}/{total} rows "
                    f"encoded, decode cache {child.cache_size} slots "
                    f"({child.cache_hits} hits, {child.cache_misses} "
                    f"misses), {child.pushdown_queries} pushed-down "
                    f"queries",
                    file=out,
                )
        _print_lane_stats(backend, out)
        print(
            f"total: {total_rows} rows across {len(children)} shard(s), "
            f"{total_bytes} bytes on disk",
            file=out,
        )
        if cols_known:
            print(
                f"total: columnar: {total_cols}/{total_rows} rows encoded",
                file=out,
            )
        return 0
    finally:
        backend.close()


def cmd_vocabulary(args, out) -> int:
    # The vocabulary derives from the data model alone; --backend/--db are
    # accepted for interface uniformity but the store is never written, so
    # an existing --db is left untouched.
    module = WORKLOADS[args.workload]
    sim = module.workload().simulate(cases=0)
    try:
        for concept, phrases in sim.vocabulary.dropdown_entries().items():
            print(concept, file=out)
            for phrase in phrases:
                print(f"  - {phrase}", file=out)
        return 0
    finally:
        sim.store.close()


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "db", None) and args.backend == "memory":
        parser.error("--db requires --backend sqlite")
    if getattr(args, "shards", 1) < 1:
        parser.error("--shards must be >= 1")
    try:
        if args.command == "simulate":
            return cmd_simulate(args, out)
        if args.command == "check":
            return cmd_check(args, out)
        if args.command == "watch":
            return cmd_watch(args, out)
        if args.command == "serve":
            return cmd_serve(args, out)
        if args.command == "scenarios":
            return cmd_scenarios(args, out)
        if args.command == "report":
            return cmd_report(args, out)
        if args.command == "chaos":
            return cmd_chaos(args, out)
        if args.command == "store-stats":
            return cmd_store_stats(args, out)
        return cmd_vocabulary(args, out)
    except BackendError as exc:
        parser.error(str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
