"""Hardcoded (IT-implemented) internal controls.

"Traditionally internal control points are implemented by the IT
organization based on the requirements prepared by business people […]
mainly because the internal controls are buried into the application code"
(§I).  These functions are that tradition: each control is Python code
joining store records by foreign keys, written and maintained by a
developer.

They intentionally duplicate the semantics of the BAL controls of the
workload modules — E4 asserts verdict-for-verdict agreement, and E6
measures what that duplication costs in artifact size and in edits per
process change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.model.records import ProvenanceRecord
from repro.store.store import ProvenanceStore

CheckFn = Callable[[ProvenanceStore, str], ComplianceStatus]


@dataclass(frozen=True)
class HardcodedControl:
    """One IT-implemented control: a name and a store-level check."""

    name: str
    check: CheckFn

    def evaluate(
        self, store: ProvenanceStore, trace_id: str
    ) -> ComplianceResult:
        return ComplianceResult(
            control_name=self.name,
            trace_id=trace_id,
            status=self.check(store, trace_id),
        )

    def evaluate_all(self, store: ProvenanceStore) -> List[ComplianceResult]:
        return [
            self.evaluate(store, trace_id)
            for trace_id in store.app_ids()
        ]


def _one(
    store: ProvenanceStore, trace_id: str, entity_type: str, **attrs
) -> Optional[ProvenanceRecord]:
    records = store.find_data(trace_id, entity_type, **attrs)
    return records[0] if records else None


# -- hiring (New Position Open) ---------------------------------------------------


def _hiring_gm_approval(store: ProvenanceStore, trace_id: str):
    requisition = _one(store, trace_id, "jobrequisition", type="new")
    if requisition is None:
        return ComplianceStatus.NOT_APPLICABLE
    reqid = requisition.get("reqid")
    approval = _one(store, trace_id, "approvalstatus", reqid=reqid)
    candidates = _one(store, trace_id, "candidatelist", reqid=reqid)
    if approval is not None and candidates is not None:
        return ComplianceStatus.SATISFIED
    return ComplianceStatus.VIOLATED


def _hiring_sod(store: ProvenanceStore, trace_id: str):
    requisition = _one(store, trace_id, "jobrequisition", type="new")
    if requisition is None:
        return ComplianceStatus.NOT_APPLICABLE
    approval = _one(
        store, trace_id, "approvalstatus", reqid=requisition.get("reqid")
    )
    if approval is None:
        return ComplianceStatus.SATISFIED
    if approval.get("approver_email") == requisition.get("submitter_email"):
        return ComplianceStatus.VIOLATED
    return ComplianceStatus.SATISFIED


def _hiring_submitter_known(store: ProvenanceStore, trace_id: str):
    from repro.model.records import RecordClass
    from repro.store.query import RecordQuery

    requisitions = store.find_data(trace_id, "jobrequisition")
    if not requisitions:
        return ComplianceStatus.NOT_APPLICABLE
    requisition = requisitions[0]
    people = store.select(
        RecordQuery(
            record_class=RecordClass.RESOURCE,
            app_id=trace_id,
            entity_type="person",
        )
    )
    submitter_email = requisition.get("submitter_email")
    known = any(
        person.get("email") == submitter_email for person in people
    )
    return (
        ComplianceStatus.SATISFIED if known else ComplianceStatus.VIOLATED
    )


def hiring_hardcoded_controls() -> List[HardcodedControl]:
    """IT twins of :data:`repro.processes.hiring.CONTROL_SPECS`."""
    return [
        HardcodedControl("gm-approval", _hiring_gm_approval),
        HardcodedControl("sod-approval", _hiring_sod),
        HardcodedControl("submitter-known", _hiring_submitter_known),
    ]


# -- procurement (purchase-to-pay) ------------------------------------------------


def _po_above_threshold(store: ProvenanceStore, trace_id: str):
    from repro.processes.procurement import APPROVAL_THRESHOLD

    for order in store.find_data(trace_id, "purchaseorder"):
        amount = order.get("amount")
        if isinstance(amount, int) and amount >= APPROVAL_THRESHOLD:
            return order
    return None


def _procurement_approval(store: ProvenanceStore, trace_id: str):
    order = _po_above_threshold(store, trace_id)
    if order is None:
        return ComplianceStatus.NOT_APPLICABLE
    approval = _one(store, trace_id, "poapproval", poid=order.get("poid"))
    return (
        ComplianceStatus.SATISFIED
        if approval is not None
        else ComplianceStatus.VIOLATED
    )


def _procurement_sod(store: ProvenanceStore, trace_id: str):
    order = _po_above_threshold(store, trace_id)
    if order is None:
        return ComplianceStatus.NOT_APPLICABLE
    approval = _one(store, trace_id, "poapproval", poid=order.get("poid"))
    if approval is None:
        return ComplianceStatus.SATISFIED
    if approval.get("approver_email") == order.get("requester_email"):
        return ComplianceStatus.VIOLATED
    return ComplianceStatus.SATISFIED


def _procurement_three_way(store: ProvenanceStore, trace_id: str):
    orders = store.find_data(trace_id, "purchaseorder")
    order = None
    for candidate in orders:
        if _one(store, trace_id, "payment", poid=candidate.get("poid")):
            order = candidate
            break
    if order is None:
        return ComplianceStatus.NOT_APPLICABLE
    poid = order.get("poid")
    receipt = _one(store, trace_id, "goodsreceipt", poid=poid)
    invoice = _one(store, trace_id, "invoice", poid=poid)
    if receipt is None or invoice is None:
        return ComplianceStatus.VIOLATED
    if invoice.get("amount") != order.get("amount"):
        return ComplianceStatus.VIOLATED
    return ComplianceStatus.SATISFIED


def procurement_hardcoded_controls() -> List[HardcodedControl]:
    return [
        HardcodedControl("po-approval", _procurement_approval),
        HardcodedControl("sod-procurement", _procurement_sod),
        HardcodedControl("three-way-match", _procurement_three_way),
    ]


# -- expenses ------------------------------------------------------------------------


def _expenses_manager_approval(store: ProvenanceStore, trace_id: str):
    report = None
    for candidate in store.find_data(trace_id, "expensereport"):
        if _one(store, trace_id, "reimbursement",
                expid=candidate.get("expid")):
            report = candidate
            break
    if report is None:
        return ComplianceStatus.NOT_APPLICABLE
    approval = _one(
        store, trace_id, "expenseapproval", expid=report.get("expid")
    )
    return (
        ComplianceStatus.SATISFIED
        if approval is not None
        else ComplianceStatus.VIOLATED
    )


def _expenses_audit(store: ProvenanceStore, trace_id: str):
    from repro.processes.expenses import AUDIT_THRESHOLD

    report = None
    for candidate in store.find_data(trace_id, "expensereport"):
        amount = candidate.get("amount")
        if isinstance(amount, int) and amount > AUDIT_THRESHOLD:
            report = candidate
            break
    if report is None:
        return ComplianceStatus.NOT_APPLICABLE
    audit = _one(store, trace_id, "auditrecord", expid=report.get("expid"))
    return (
        ComplianceStatus.SATISFIED
        if audit is not None
        else ComplianceStatus.VIOLATED
    )


def _expenses_receipt(store: ProvenanceStore, trace_id: str):
    from repro.processes.expenses import RECEIPT_THRESHOLD

    report = None
    for candidate in store.find_data(trace_id, "expensereport"):
        amount = candidate.get("amount")
        if isinstance(amount, int) and amount >= RECEIPT_THRESHOLD:
            report = candidate
            break
    if report is None:
        return ComplianceStatus.NOT_APPLICABLE
    return (
        ComplianceStatus.SATISFIED
        if report.get("receipt") == "attached"
        else ComplianceStatus.VIOLATED
    )


def expenses_hardcoded_controls() -> List[HardcodedControl]:
    return [
        HardcodedControl("manager-approval", _expenses_manager_approval),
        HardcodedControl("audit-high-value", _expenses_audit),
        HardcodedControl("receipt-required", _expenses_receipt),
    ]


# -- incidents -------------------------------------------------------------------


def _p1_incident(store: ProvenanceStore, trace_id: str):
    for incident in store.find_data(trace_id, "incident"):
        if incident.get("priority") == "P1":
            return incident
    return None


def _incidents_escalation(store: ProvenanceStore, trace_id: str):
    incident = _p1_incident(store, trace_id)
    if incident is None:
        return ComplianceStatus.NOT_APPLICABLE
    escalation = _one(
        store, trace_id, "escalation", incid=incident.get("incid")
    )
    return (
        ComplianceStatus.SATISFIED
        if escalation is not None
        else ComplianceStatus.VIOLATED
    )


def _incidents_postmortem(store: ProvenanceStore, trace_id: str):
    incident = _p1_incident(store, trace_id)
    if incident is None:
        return ComplianceStatus.NOT_APPLICABLE
    incid = incident.get("incid")
    closure = _one(store, trace_id, "closure", incid=incid)
    if closure is None:
        return ComplianceStatus.SATISFIED
    postmortem = _one(store, trace_id, "postmortem", incid=incid)
    return (
        ComplianceStatus.SATISFIED
        if postmortem is not None
        else ComplianceStatus.VIOLATED
    )


def _incidents_close_after_resolve(store: ProvenanceStore, trace_id: str):
    incident = None
    closure = None
    for candidate in store.find_data(trace_id, "incident"):
        found = _one(store, trace_id, "closure",
                     incid=candidate.get("incid"))
        if found is not None:
            incident, closure = candidate, found
            break
    if incident is None:
        return ComplianceStatus.NOT_APPLICABLE
    resolution = _one(
        store, trace_id, "resolution", incid=incident.get("incid")
    )
    if resolution is None:
        return ComplianceStatus.VIOLATED
    if resolution.timestamp < closure.timestamp:
        return ComplianceStatus.SATISFIED
    return ComplianceStatus.VIOLATED


def incidents_hardcoded_controls() -> List[HardcodedControl]:
    return [
        HardcodedControl("p1-escalation", _incidents_escalation),
        HardcodedControl("p1-postmortem", _incidents_postmortem),
        HardcodedControl("close-after-resolve",
                         _incidents_close_after_resolve),
    ]
