"""Raw store-query controls.

"Extensive IT skills are required to manage the data stored in a database"
(§II.C): before verbalization, the only way to check a control is to write
XML queries against the Table-I rows.  A :class:`StoreQueryControl` is that
style — a list of xpath-lite probes over physical rows, combined with a
predicate.  It exists as the *authoring-cost* comparison point (E6): the
query text knows nothing of business vocabulary, so every probe spells out
storage details (element names, trace scoping, type filters) by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.store.query import xpath_lite
from repro.store.store import ProvenanceStore

# A probe extracts values from one trace: (label, xpath) applied to every
# row of the trace; results collected per label.
Probe = Sequence[str]  # (label, xpath)


@dataclass(frozen=True)
class StoreQueryControl:
    """A control expressed as raw XML queries plus a verdict function.

    Attributes:
        name: control name.
        probes: ``(label, xpath)`` pairs evaluated against every row of the
            trace; matched strings are gathered per label.
        verdict: maps the gathered values to a compliance status.
    """

    name: str
    probes: Sequence[Probe]
    verdict: Callable[[Dict[str, List[str]]], ComplianceStatus]

    def evaluate(
        self, store: ProvenanceStore, trace_id: str
    ) -> ComplianceResult:
        gathered: Dict[str, List[str]] = {
            label: [] for label, __ in self.probes
        }
        for row in store.rows():
            if row.app_id != trace_id:
                continue
            for label, path in self.probes:
                gathered[label].extend(xpath_lite(row, path))
        return ComplianceResult(
            control_name=self.name,
            trace_id=trace_id,
            status=self.verdict(gathered),
        )

    def evaluate_all(self, store: ProvenanceStore) -> List[ComplianceResult]:
        return [
            self.evaluate(store, trace_id) for trace_id in store.app_ids()
        ]


def hiring_gm_approval_query_control() -> StoreQueryControl:
    """The paper's worked control, written the pre-verbalization way."""

    def verdict(values: Dict[str, List[str]]) -> ComplianceStatus:
        new_reqids = [
            reqid
            for reqid, kind in zip(values["req_id"], values["req_type"])
            if kind == "new"
        ]
        if not new_reqids:
            return ComplianceStatus.NOT_APPLICABLE
        reqid = new_reqids[0]
        if reqid in values["approval_reqid"] and (
            reqid in values["candidates_reqid"]
        ):
            return ComplianceStatus.SATISFIED
        return ComplianceStatus.VIOLATED

    return StoreQueryControl(
        name="gm-approval",
        probes=[
            ("req_id", "/jobrequisition/reqid"),
            ("req_type", "/jobrequisition/type"),
            ("approval_reqid", "/approvalstatus/reqid"),
            ("candidates_reqid", "/candidatelist/reqid"),
        ],
        verdict=verdict,
    )
