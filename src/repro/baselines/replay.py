"""Token-replay conformance checking baseline.

A process-mining-style comparator: given the *normative* process model (the
clean paths, with violation branches excluded) and the task records observed
in a trace, the trace conforms when its task sequence is one of the model's
complete activity sequences.

The baseline deliberately sees only control flow:

- it misses data-level violations (a self-approval replays perfectly; a
  skipped approval on a *new* position looks exactly like the legitimate
  existing-position path, because the routing guard reads business data the
  replayer does not),
- it over-fires under partial visibility (a dropped task event makes a
  compliant trace non-replayable).

Experiment E4 quantifies both effects against the provenance + vocabulary
approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.controls.status import ComplianceResult, ComplianceStatus
from repro.model.records import RecordClass, TaskRecord
from repro.processes.spec import ActivityStep, ChoiceStep, EndStep, ProcessSpec
from repro.store.query import RecordQuery
from repro.store.store import ProvenanceStore

_MAX_PATHS = 10000


def normative_sequences(
    spec: ProcessSpec,
    exclude_branches: Optional[Set[str]] = None,
    activity_task_types: Optional[Dict[str, str]] = None,
) -> Set[Tuple[str, ...]]:
    """All complete activity sequences of the clean model.

    Args:
        spec: the process spec.
        exclude_branches: gateway branch labels that represent violating
            routes (they exist in the simulator's spec only to *inject*
            violations; the normative model does not contain them).
        activity_task_types: optional map activity name → task entity type;
            when given, sequences are expressed in task types and
            activities without a mapping are dropped (they emit no task
            records the replayer could observe).
    """
    excluded = exclude_branches or set()
    sequences: Set[Tuple[str, ...]] = set()

    def walk(step_name: Optional[str], path: List[str]) -> None:
        if len(sequences) > _MAX_PATHS:
            raise RuntimeError("process model path explosion")
        if step_name is None:
            sequences.add(tuple(path))
            return
        step = spec.step(step_name)
        if isinstance(step, EndStep):
            sequences.add(tuple(path))
            return
        if isinstance(step, ActivityStep):
            walk(step.next_step, path + [step.name])
            return
        if isinstance(step, ChoiceStep):
            for label, target in step.branches.items():
                if label in excluded:
                    continue
                walk(target, path)
            return
        raise RuntimeError(f"unknown step kind {type(step).__name__}")

    walk(spec.start, [])

    if activity_task_types is not None:
        mapped: Set[Tuple[str, ...]] = set()
        for sequence in sequences:
            mapped.add(
                tuple(
                    activity_task_types[name]
                    for name in sequence
                    if name in activity_task_types
                )
            )
        return mapped
    return sequences


@dataclass
class ReplayChecker:
    """Checks traces against the normative sequences.

    Attributes:
        name: baseline identifier used in result rows.
        sequences: the normative language (tuples of task entity types).
        prefix_ok: when True, a strict prefix of a normative sequence also
            conforms (the case may simply still be running).
    """

    name: str
    sequences: Set[Tuple[str, ...]]
    prefix_ok: bool = False

    def observed_sequence(
        self, store: ProvenanceStore, trace_id: str
    ) -> Tuple[str, ...]:
        """The trace's task entity types ordered by completion time."""
        tasks = [
            record
            for record in store.select(
                RecordQuery(record_class=RecordClass.TASK, app_id=trace_id)
            )
            if isinstance(record, TaskRecord)
        ]
        tasks.sort(key=lambda t: (t.timestamp, t.record_id))
        return tuple(task.entity_type for task in tasks)

    def conforms(self, observed: Tuple[str, ...]) -> bool:
        if observed in self.sequences:
            return True
        if self.prefix_ok:
            return any(
                sequence[: len(observed)] == observed
                for sequence in self.sequences
            )
        return False

    def evaluate(
        self, store: ProvenanceStore, trace_id: str
    ) -> ComplianceResult:
        observed = self.observed_sequence(store, trace_id)
        status = (
            ComplianceStatus.SATISFIED
            if self.conforms(observed)
            else ComplianceStatus.VIOLATED
        )
        return ComplianceResult(
            control_name=self.name, trace_id=trace_id, status=status
        )

    def evaluate_all(self, store: ProvenanceStore) -> List[ComplianceResult]:
        return [
            self.evaluate(store, trace_id) for trace_id in store.app_ids()
        ]


def hiring_replay_checker() -> ReplayChecker:
    """The replay baseline configured for the Figure-1 workload."""
    from repro.processes.hiring import build_spec

    sequences = normative_sequences(
        build_spec(),
        exclude_branches={"skip_approval", "skip"},
        activity_task_types={
            "submit_requisition": "submission",
            "approve_reject": "approvaltask",
            "find_candidates": "candidatesearch",
            "notify": "notifytask",
        },
    )
    return ReplayChecker(name="token-replay", sequences=sequences)
