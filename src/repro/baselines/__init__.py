"""Baselines the paper's approach is compared against.

- :mod:`repro.baselines.hardcoded` — internal controls "buried into the
  application code" (§I): Python functions hitting the store directly.
  This is the traditional IT-implemented approach; it must produce the
  *same verdicts* as the vocabulary-authored controls (the paper claims no
  power is lost), but costs more to author and to change (experiment E6).
- :mod:`repro.baselines.replay` — token-replay conformance checking over
  observed task sequences, a process-mining-style baseline that sees
  control flow but not business data.
- :mod:`repro.baselines.storequery` — raw XPath-lite queries against the
  Table-I rows, the "extensive IT skills are required" path of §II.C.
"""

from repro.baselines.hardcoded import (
    HardcodedControl,
    expenses_hardcoded_controls,
    hiring_hardcoded_controls,
    incidents_hardcoded_controls,
    procurement_hardcoded_controls,
)
from repro.baselines.replay import (
    ReplayChecker,
    hiring_replay_checker,
    normative_sequences,
)
from repro.baselines.storequery import (
    StoreQueryControl,
    hiring_gm_approval_query_control,
)

__all__ = [
    "HardcodedControl",
    "ReplayChecker",
    "StoreQueryControl",
    "expenses_hardcoded_controls",
    "hiring_gm_approval_query_control",
    "hiring_replay_checker",
    "hiring_hardcoded_controls",
    "incidents_hardcoded_controls",
    "normative_sequences",
    "procurement_hardcoded_controls",
]
